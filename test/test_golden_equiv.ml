(* Golden equivalence of the trial-context fast path.

   Power_model.evaluate and size_all run on cached Drive contexts (the
   per-(vdd, vt) transcendentals hoisted out of the per-gate and
   per-iteration loops). These tests re-derive the same numbers through
   the original uncached formulas — Delay.gate_delay via the public
   Power_model.gate_delay, and the Energy module directly — exactly as
   the pre-cache implementation computed them, and require agreement to
   <= 1e-9 relative error (the delay path is bit-identical by
   construction; the energy path may differ at round-off). *)

module Circuit = Dcopt_netlist.Circuit
module Tech = Dcopt_device.Tech
module Energy = Dcopt_device.Energy
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Power_model = Dcopt_opt.Power_model
module Budget_repair = Dcopt_opt.Budget_repair
module Numeric = Dcopt_util.Numeric

let tech = Tech.default
let fc = 300e6
let tolerance = 1e-9

let setup core =
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc core profile in
  let raw =
    (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max
  in
  let budgets =
    match
      Budget_repair.repair env ~budgets:raw ~vdd:tech.Tech.vdd_max
        ~vt:tech.Tech.vt_min
    with
    | Budget_repair.Repaired { budgets; _ } -> budgets
    | Budget_repair.Infeasible _ -> raw
  in
  (env, budgets)

let s27 () = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27")

let adder () =
  Circuit.combinational_core
    (Dcopt_netlist.Patterns.ripple_carry_adder ~bits:8)

let check_rel what reference fast =
  let err =
    if reference = fast then 0.0 (* covers infinities and exact hits *)
    else Float.abs (fast -. reference) /. Float.max 1e-300 (Float.abs reference)
  in
  if not (err <= tolerance) then
    Alcotest.failf "%s: reference %.17g fast %.17g (rel err %g)" what
      reference fast err

(* The pre-cache evaluate, re-derived through the public per-gate API:
   same topological propagation, same per-gate load, original Energy
   formulas. *)
let reference_evaluate env design =
  let core = Power_model.circuit env in
  let n = Circuit.size core in
  let delays = Array.make n 0.0 in
  let arrival = Array.make n 0.0 in
  let is_gate = Array.make n false in
  Array.iter (fun id -> is_gate.(id) <- true) (Power_model.gate_ids env);
  let static_e = ref 0.0 and dynamic_e = ref 0.0 in
  Array.iter
    (fun id ->
      let nd = Circuit.node core id in
      let max_fanin_delay =
        Array.fold_left
          (fun acc f -> if is_gate.(f) then Float.max acc delays.(f) else acc)
          0.0 nd.Circuit.fanins
      in
      let d = Power_model.gate_delay env design ~max_fanin_delay id in
      delays.(id) <- d;
      let worst_arrival =
        Array.fold_left
          (fun acc f -> Float.max acc arrival.(f))
          0.0 nd.Circuit.fanins
      in
      arrival.(id) <- worst_arrival +. d;
      let load = Power_model.gate_load env design ~max_fanin_delay id in
      static_e :=
        !static_e
        +. Energy.static_energy tech ~fc ~vdd:design.Power_model.vdd
             ~vt:design.Power_model.vt.(id) ~w:design.Power_model.widths.(id);
      dynamic_e :=
        !dynamic_e
        +. Energy.dynamic_energy tech ~vdd:design.Power_model.vdd
             ~w:design.Power_model.widths.(id)
             ~activity:(Power_model.activity env id)
             ~load)
    (Power_model.gate_ids env);
  let critical_delay =
    Array.fold_left
      (fun acc id -> Float.max acc arrival.(id))
      0.0 (Circuit.outputs core)
  in
  (!static_e, !dynamic_e, delays, critical_delay)

(* The pre-cache size_gate: mutate the width under test, rebuild the load
   through the public gate_delay every iteration, restore. *)
let reference_size_gate env design ~budgets id =
  let target = budgets.(id) in
  let max_fanin_delay = Power_model.budget_fanin_delay env ~budgets id in
  let saved = design.Power_model.widths.(id) in
  let feasible w =
    design.Power_model.widths.(id) <- w;
    Power_model.gate_delay env design ~max_fanin_delay id <= target
  in
  let result =
    Numeric.binary_search_min ~feasible ~lo:tech.Tech.w_min
      ~hi:tech.Tech.w_max ~iters:40 ()
  in
  design.Power_model.widths.(id) <- saved;
  result

let reference_size_all env ~vdd ~vt ~budgets =
  let n = Circuit.size (Power_model.circuit env) in
  let design =
    { Power_model.vdd; vt; widths = Array.make n tech.Tech.w_min }
  in
  let gates = Power_model.gate_ids env in
  let all_met = ref true in
  for i = Array.length gates - 1 downto 0 do
    let id = gates.(i) in
    match reference_size_gate env design ~budgets id with
    | Some w -> design.Power_model.widths.(id) <- w
    | None ->
      design.Power_model.widths.(id) <- tech.Tech.w_max;
      all_met := false
  done;
  (design, !all_met)

let operating_points =
  [ (1.0, 0.15); (0.6, 0.25); (1.2, 0.45); (0.45, 0.1) ]

let check_evaluate_equiv core_of () =
  let env, budgets = setup (core_of ()) in
  List.iter
    (fun (vdd, vt) ->
      (* both a uniform design and the sized design at this point *)
      let designs =
        [
          Power_model.uniform_design env ~vdd ~vt ~w:4.0;
          (let n = Circuit.size (Power_model.circuit env) in
           fst (Power_model.size_all env ~vdd ~vt:(Array.make n vt) ~budgets));
        ]
      in
      List.iter
        (fun design ->
          let fast = Power_model.evaluate env design in
          let static_e, dynamic_e, delays, critical = reference_evaluate env design in
          let at = Printf.sprintf "vdd=%.2f vt=%.2f" vdd vt in
          check_rel (at ^ " static") static_e fast.Power_model.static_energy;
          check_rel (at ^ " dynamic") dynamic_e fast.Power_model.dynamic_energy;
          check_rel (at ^ " total") (static_e +. dynamic_e)
            fast.Power_model.total_energy;
          check_rel (at ^ " critical") critical fast.Power_model.critical_delay;
          Array.iteri
            (fun id d ->
              check_rel
                (Printf.sprintf "%s delay[%d]" at id)
                d fast.Power_model.delays.(id))
            delays)
        designs)
    operating_points

let check_size_all_equiv core_of () =
  let env, budgets = setup (core_of ()) in
  let n = Circuit.size (Power_model.circuit env) in
  List.iter
    (fun (vdd, vt) ->
      let vt_arr = Array.make n vt in
      let fast, fast_met = Power_model.size_all env ~vdd ~vt:vt_arr ~budgets in
      let refd, ref_met = reference_size_all env ~vdd ~vt:vt_arr ~budgets in
      Alcotest.(check bool)
        (Printf.sprintf "all_met at vdd=%.2f vt=%.2f" vdd vt)
        ref_met fast_met;
      Array.iteri
        (fun id w ->
          check_rel
            (Printf.sprintf "width[%d] at vdd=%.2f vt=%.2f" id vdd vt)
            w fast.Power_model.widths.(id))
        refd.Power_model.widths)
    operating_points

let () =
  Alcotest.run "golden_equiv"
    [
      ( "evaluate",
        [
          Alcotest.test_case "s27 cached = reference" `Quick
            (check_evaluate_equiv s27);
          Alcotest.test_case "adder8 cached = reference" `Quick
            (check_evaluate_equiv adder);
        ] );
      ( "size_all",
        [
          Alcotest.test_case "s27 cached = reference" `Quick
            (check_size_all_equiv s27);
          Alcotest.test_case "adder8 cached = reference" `Quick
            (check_size_all_equiv adder);
        ] );
    ]
