module Prng = Dcopt_util.Prng
module Numeric = Dcopt_util.Numeric
module Stats = Dcopt_util.Stats
module Heap = Dcopt_util.Heap
module Si = Dcopt_util.Si
module Text_table = Dcopt_util.Text_table

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_of_string_stable () =
  let a = Prng.of_string "s298" and b = Prng.of_string "s298" in
  Alcotest.(check int64) "same seed" (Prng.bits64 a) (Prng.bits64 b);
  let c = Prng.of_string "s299" in
  Alcotest.(check bool) "different name differs" true
    (Prng.bits64 (Prng.of_string "s298") <> Prng.bits64 c)

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let child = Prng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Prng.bits64 child <> Prng.bits64 a)

let test_prng_copy () =
  let a = Prng.create 11L in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_prng_int_range () =
  let rng = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_range () =
  let rng = Prng.create 5L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_uniform_mean () =
  let rng = Prng.create 13L in
  let xs = Array.init 20_000 (fun _ -> Prng.uniform rng 2.0 4.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.03)

let test_prng_gaussian_moments () =
  let rng = Prng.create 17L in
  let xs = Array.init 40_000 (fun _ -> Prng.gaussian rng ~mean:1.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean" true (Float.abs (Stats.mean xs -. 1.0) < 0.05);
  Alcotest.(check bool) "sigma" true (Float.abs (Stats.stddev xs -. 2.0) < 0.05)

let test_prng_exponential_mean () =
  let rng = Prng.create 19L in
  let xs = Array.init 40_000 (fun _ -> Prng.exponential rng ~rate:4.0) in
  Alcotest.(check bool) "mean near 1/4" true
    (Float.abs (Stats.mean xs -. 0.25) < 0.01)

let test_prng_choose_weighted () =
  let rng = Prng.create 23L in
  let hits = Array.make 2 0 in
  for _ = 1 to 10_000 do
    let i = Prng.choose_weighted rng [| (0, 1.0); (1, 3.0) |] in
    hits.(i) <- hits.(i) + 1
  done;
  let ratio = float_of_int hits.(1) /. float_of_int hits.(0) in
  Alcotest.(check bool) "3:1 weighting" true (ratio > 2.5 && ratio < 3.5)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 29L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Numeric                                                            *)

let test_clamp () =
  check_float "below" 1.0 (Numeric.clamp ~lo:1.0 ~hi:2.0 0.5);
  check_float "above" 2.0 (Numeric.clamp ~lo:1.0 ~hi:2.0 2.5);
  check_float "inside" 1.5 (Numeric.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_approx_equal () =
  Alcotest.(check bool) "close" true (Numeric.approx_equal 1.0 (1.0 +. 1e-8));
  Alcotest.(check bool) "far" false (Numeric.approx_equal 1.0 1.1)

let test_bisect_sqrt2 () =
  let root = Numeric.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  Alcotest.(check (float 1e-9)) "sqrt 2" (sqrt 2.0) root

let test_binary_search_min () =
  let feasible x = x >= 3.25 in
  match Numeric.binary_search_min ~feasible ~lo:0.0 ~hi:10.0 () with
  | Some x -> Alcotest.(check (float 1e-6)) "threshold" 3.25 x
  | None -> Alcotest.fail "expected Some"

let test_binary_search_min_none () =
  Alcotest.(check bool) "no feasible" true
    (Numeric.binary_search_min ~feasible:(fun _ -> false) ~lo:0.0 ~hi:1.0 ()
     = None)

let test_binary_search_min_all () =
  Alcotest.(check (option (float 0.0))) "all feasible" (Some 0.0)
    (Numeric.binary_search_min ~feasible:(fun _ -> true) ~lo:0.0 ~hi:1.0 ())

let test_binary_search_max () =
  let feasible x = x <= 7.5 in
  match Numeric.binary_search_max ~feasible ~lo:0.0 ~hi:10.0 () with
  | Some x -> Alcotest.(check (float 1e-6)) "threshold" 7.5 x
  | None -> Alcotest.fail "expected Some"

let test_golden_section () =
  let f x = (x -. 1.3) *. (x -. 1.3) +. 2.0 in
  let x = Numeric.golden_section_min ~f ~lo:0.0 ~hi:4.0 () in
  Alcotest.(check (float 1e-6)) "parabola minimum" 1.3 x

let test_integrate () =
  let v = Numeric.integrate_trapezoid ~f:(fun x -> x) ~lo:0.0 ~hi:1.0 ~n:100 in
  Alcotest.(check (float 1e-9)) "integral of x" 0.5 v

let test_interp_linear () =
  let pts = [| (0.0, 0.0); (1.0, 10.0); (2.0, 0.0) |] in
  check_float "mid" 5.0 (Numeric.interp_linear pts 0.5);
  check_float "clamp left" 0.0 (Numeric.interp_linear pts (-1.0));
  check_float "clamp right" 0.0 (Numeric.interp_linear pts 3.0)

let test_linspace () =
  let xs = Numeric.linspace ~lo:0.0 ~hi:1.0 ~n:5 in
  Alcotest.(check int) "count" 5 (Array.length xs);
  check_float "first" 0.0 xs.(0);
  check_float "last" 1.0 xs.(4);
  check_float "mid" 0.5 xs.(2)

let test_log_points () =
  let xs = Numeric.log_interp_points ~lo:1.0 ~hi:100.0 ~n:3 in
  check_float "geometric middle" 10.0 xs.(1)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "median" 2.5 (Stats.median xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p50" 30.0 (Stats.percentile xs 50.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0);
  check_float "p25" 20.0 (Stats.percentile xs 25.0)

let test_stats_quantile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "q0" 10.0 (Stats.quantile xs 0.0);
  check_float "q0.5" 30.0 (Stats.quantile xs 0.5);
  check_float "q1" 50.0 (Stats.quantile xs 1.0);
  (* linear interpolation between order statistics *)
  check_float "q0.9" 46.0 (Stats.quantile xs 0.9);
  check_float "q0.125" 15.0 (Stats.quantile xs 0.125);
  (* order-independent and consistent with percentile *)
  let ys = [| 50.0; 10.0; 40.0; 20.0; 30.0 |] in
  check_float "unsorted input" (Stats.percentile xs 75.0) (Stats.quantile ys 0.75);
  check_float "singleton" 7.0 (Stats.quantile [| 7.0 |] 0.99)

let test_geometric_mean () =
  check_float "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let test_histogram () =
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 5 total

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 3.0; 1.0; 4.0; 1.5; 9.0; 2.6 ];
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list (float 0.0))) "descending"
    [ 9.0; 4.0; 3.0; 2.6; 1.5; 1.0 ] (drain [])

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let heap_property =
  QCheck.Test.make ~name:"heap pops in non-increasing priority" ~count:200
    QCheck.(list float)
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p ()) ps;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, ()) -> p <= last && drain p
      in
      drain infinity)

(* ------------------------------------------------------------------ *)
(* Si / Text_table                                                    *)

let test_si_prefixed () =
  let m, p = Si.prefixed 2.41e-12 in
  Alcotest.(check string) "pico" "p" p;
  Alcotest.(check bool) "mantissa" true (Float.abs (m -. 2.41) < 1e-9)

let test_si_format () =
  Alcotest.(check string) "pJ" "2.41 pJ" (Si.format ~unit:"J" 2.41e-12);
  Alcotest.(check string) "zero" "0 J" (Si.format ~unit:"J" 0.0)

let test_si_negative_and_large () =
  Alcotest.(check string) "negative" "-2.5 mJ" (Si.format ~unit:"J" (-2.5e-3));
  Alcotest.(check string) "huge clamps to exa" "5e+03 EJ"
    (Si.format ~unit:"J" 5e21);
  Alcotest.(check string) "tiny clamps to atto" "0.5 aJ"
    (Si.format ~unit:"J" 5e-19)

let test_si_format_exp () =
  Alcotest.(check string) "exp" "2.41e-12" (Si.format_exp 2.41e-12)

let test_text_table () =
  let t = Text_table.create ~headers:[ "a"; "bb" ] in
  Text_table.add_row t [ "1"; "2" ];
  Text_table.add_separator t;
  Text_table.add_row t [ "333"; "4" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 <> " " || true);
  (* every line has the same length *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let lens = List.map String.length lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun l -> l = List.hd lens) lens)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "of_string stable" `Quick test_prng_of_string_stable;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "weighted choice" `Quick test_prng_choose_weighted;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
          Alcotest.test_case "binary_search_min" `Quick test_binary_search_min;
          Alcotest.test_case "binary_search_min none" `Quick
            test_binary_search_min_none;
          Alcotest.test_case "binary_search_min all" `Quick
            test_binary_search_min_all;
          Alcotest.test_case "binary_search_max" `Quick test_binary_search_max;
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "trapezoid" `Quick test_integrate;
          Alcotest.test_case "interp" `Quick test_interp_linear;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "log points" `Quick test_log_points;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "geomean" `Quick test_geometric_mean;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          QCheck_alcotest.to_alcotest heap_property;
        ] );
      ( "format",
        [
          Alcotest.test_case "si prefixed" `Quick test_si_prefixed;
          Alcotest.test_case "si format" `Quick test_si_format;
          Alcotest.test_case "si negatives and extremes" `Quick
            test_si_negative_and_large;
          Alcotest.test_case "si exp" `Quick test_si_format_exp;
          Alcotest.test_case "text table" `Quick test_text_table;
        ] );
    ]
