(* Deterministic fuzz over the two user-facing text front doors: .bench
   netlists and Flow.config JSON. Every mutated input must come back as
   [Ok] or a typed [Error] — never an escaping exception — and every
   [Error] must carry at least one diagnostic. Seeded SplitMix64
   ({!Dcopt_util.Prng}), so a failure reproduces exactly. *)

module Bench_format = Dcopt_netlist.Bench_format
module Flow = Dcopt_core.Flow
module Diag = Dcopt_util.Diag
module Json = Dcopt_util.Json
module Prng = Dcopt_util.Prng
module Suite = Dcopt_suite.Suite

let seed = 0xF022DL
let rounds = try int_of_string (Sys.getenv "FUZZ_ROUNDS") with Not_found -> 400

(* --- mutation machinery ------------------------------------------------ *)

let lines_of s = String.split_on_char '\n' s
let unlines = String.concat "\n"

let replace_all ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

(* structured line-level mutations: the shapes a damaged or hand-edited
   file actually takes *)
let mutate_lines rng lines =
  let lines = Array.of_list lines in
  let n = Array.length lines in
  if n = 0 then []
  else
    match Prng.int rng 6 with
    | 0 ->
      (* truncate: keep a prefix *)
      Array.to_list (Array.sub lines 0 (Prng.int rng n))
    | 1 ->
      (* drop one line *)
      let k = Prng.int rng n in
      List.filteri (fun i _ -> i <> k) (Array.to_list lines)
    | 2 ->
      (* duplicate one line (duplicate net definitions, double OUTPUT) *)
      let k = Prng.int rng n in
      Array.to_list lines @ [ lines.(k) ]
    | 3 ->
      (* splice two files' halves together *)
      let k = Prng.int rng n and j = Prng.int rng n in
      Array.to_list (Array.sub lines 0 k)
      @ Array.to_list (Array.sub lines j (n - j))
    | 4 ->
      (* rename a referenced net to an undefined one *)
      let k = Prng.int rng n in
      lines.(k) <- replace_all ~sub:"G1" ~by:"Gx_undefined" lines.(k);
      Array.to_list lines
    | _ ->
      (* shuffle: breaks nothing semantically (.bench is order-free) or
         everything (outputs before inputs is still order-free — a pure
         robustness probe) *)
      Prng.shuffle rng lines;
      Array.to_list lines

(* raw byte-level mutation: flip, insert or delete a byte *)
let mutate_bytes rng s =
  if String.length s = 0 then s
  else
    let b = Bytes.of_string s in
    let k = Prng.int rng (Bytes.length b) in
    match Prng.int rng 3 with
    | 0 ->
      Bytes.set b k (Char.chr (Prng.int rng 256));
      Bytes.to_string b
    | 1 -> String.sub s 0 k ^ String.sub s (k + 1) (String.length s - k - 1)
    | _ ->
      String.sub s 0 k
      ^ String.make 1 (Char.chr (Prng.int rng 256))
      ^ String.sub s k (String.length s - k)

(* --- .bench fuzz ------------------------------------------------------- *)

let bench_seed_corpus =
  [ Bench_format.to_string (Suite.s27 ());
    "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" ]

let test_bench_fuzz () =
  let rng = Prng.create seed in
  for round = 1 to rounds do
    let base = Prng.choose rng (Array.of_list bench_seed_corpus) in
    let text =
      if Prng.bool rng then unlines (mutate_lines rng (lines_of base))
      else mutate_bytes rng base
    in
    match Bench_format.parse ~name:"fuzz" text with
    | Ok _ -> ()
    | Error [] ->
      Alcotest.failf "round %d (seed %Ld): empty diagnostic list" round seed
    | Error diags ->
      if not (Diag.has_errors diags) then
        Alcotest.failf "round %d (seed %Ld): Error with no error diagnostic"
          round seed
    | exception e ->
      Alcotest.failf "round %d (seed %Ld): escaped exception %s on:\n%s" round
        seed (Printexc.to_string e) text
  done

(* --- Flow.config JSON fuzz --------------------------------------------- *)

(* mutate the JSON *text*: the parser front door sees arbitrary bytes *)
let config_base = Json.to_string (Flow.config_to_json Flow.default_config)

let test_config_json_fuzz () =
  let rng = Prng.create (Int64.add seed 1L) in
  for round = 1 to rounds do
    let text = ref config_base in
    for _ = 0 to Prng.int rng 4 do
      text := mutate_bytes rng !text
    done;
    match Json.of_string !text with
    | Error _ -> () (* typed parse failure: fine *)
    | exception e ->
      Alcotest.failf "round %d: Json.of_string raised %s" round
        (Printexc.to_string e)
    | Ok json -> (
      match Flow.config_of_json json with
      | Ok config ->
        (* anything accepted must be well-posed: prepare cannot blow up
           with ill-posed physics *)
        Alcotest.(check (list string))
          (Printf.sprintf "round %d: accepted config validates" round)
          []
          (List.map Diag.to_string (Diag.errors (Flow.validate_config config)))
      | Error msg ->
        if String.length msg = 0 then
          Alcotest.failf "round %d: empty error message" round
      | exception e ->
        Alcotest.failf "round %d: config_of_json raised %s" round
          (Printexc.to_string e))
  done

(* numeric-field fuzz: well-formed JSON, hostile values (NaN and friends
   arrive as strings — the Json layer's non-finite encoding) *)
let test_config_value_fuzz () =
  let rng = Prng.create (Int64.add seed 2L) in
  let fields =
    [| "clock_frequency"; "input_probability"; "input_density";
       "skew_factor"; "m_steps" |]
  in
  let hostile_value () =
    match Prng.int rng 6 with
    | 0 -> Json.Float 0.0
    | 1 -> Json.Float (-.Prng.float rng 1e12)
    | 2 -> Json.String "nan"
    | 3 -> Json.String "inf"
    | 4 -> Json.Float (Prng.float rng 1e308 *. 1e10)
    | _ -> Json.Float (Prng.float rng 10.0)
  in
  for round = 1 to rounds do
    let json =
      Json.Obj [ (Prng.choose rng fields, hostile_value ()) ]
    in
    match Flow.config_of_json json with
    | Error _ -> ()
    | Ok config -> (
      Alcotest.(check (list string))
        (Printf.sprintf "round %d: accepted config validates" round)
        []
        (List.map Diag.to_string (Diag.errors (Flow.validate_config config)));
      (* and the full front end holds up on it *)
      match Flow.prepare ~config (Suite.s27 ()) with
      | _ -> ()
      | exception Invalid_argument _ -> ()
      | exception e ->
        Alcotest.failf "round %d: prepare raised %s" round
          (Printexc.to_string e))
    | exception e ->
      Alcotest.failf "round %d: config_of_json raised %s" round
        (Printexc.to_string e)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "front door",
        [
          Alcotest.test_case "bench mutations" `Quick test_bench_fuzz;
          Alcotest.test_case "config JSON byte fuzz" `Quick
            test_config_json_fuzz;
          Alcotest.test_case "config hostile values" `Quick
            test_config_value_fuzz;
        ] );
    ]
