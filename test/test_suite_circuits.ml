module Suite = Dcopt_suite.Suite
module Circuit = Dcopt_netlist.Circuit
module Stats = Dcopt_netlist.Circuit_stats
module Gate = Dcopt_netlist.Gate

let test_s27_structure () =
  let c = Suite.s27 () in
  let s = Stats.compute c in
  Alcotest.(check int) "PI" 4 s.Stats.primary_inputs;
  Alcotest.(check int) "PO" 1 s.Stats.primary_outputs;
  Alcotest.(check int) "DFF" 3 s.Stats.flip_flops;
  Alcotest.(check int) "gates" 10 s.Stats.gates

let test_s27_logic () =
  (* functional spot check of the real netlist: with all PIs 0 and all
     state bits 0, G11 = NOR(G5=0, G9) and G17 = NOT(G11). *)
  let core = Circuit.combinational_core (Suite.s27 ()) in
  let input_ids = Circuit.inputs core in
  Alcotest.(check int) "core inputs" 7 (Array.length input_ids);
  let values = Circuit.eval core (Array.make 7 false) in
  let v name = values.(Circuit.find core name) in
  (* hand-evaluated: G14=NOT(0)=1, G8=AND(1,0)=0, G12=NOR(0,0)=1,
     G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1, G11=NOR(0,1)=0,
     G17=NOT(0)=1 *)
  Alcotest.(check bool) "G14" true (v "G14");
  Alcotest.(check bool) "G8" false (v "G8");
  Alcotest.(check bool) "G12" true (v "G12");
  Alcotest.(check bool) "G9" true (v "G9");
  Alcotest.(check bool) "G11" false (v "G11");
  Alcotest.(check bool) "G17" true (v "G17")

let test_table_circuit_profiles_match () =
  List.iter
    (fun name ->
      match Suite.profile name with
      | None -> Alcotest.fail ("missing profile for " ^ name)
      | Some p ->
        let s = Stats.compute (Suite.find_exn name) in
        Alcotest.(check int) (name ^ " PI") p.Dcopt_netlist.Generator.primary_inputs
          s.Stats.primary_inputs;
        Alcotest.(check int) (name ^ " PO") p.Dcopt_netlist.Generator.primary_outputs
          s.Stats.primary_outputs;
        Alcotest.(check int) (name ^ " DFF") p.Dcopt_netlist.Generator.flip_flops
          s.Stats.flip_flops;
        Alcotest.(check int) (name ^ " gates") p.Dcopt_netlist.Generator.gates
          s.Stats.gates;
        Alcotest.(check int) (name ^ " depth") p.Dcopt_netlist.Generator.logic_depth
          s.Stats.depth)
    Suite.table_circuits

let test_published_iscas_sizes () =
  (* spot-check against the published ISCAS-89 numbers *)
  let expect name pi po ff gates =
    let s = Stats.compute (Suite.find_exn name) in
    Alcotest.(check int) (name ^ " PI") pi s.Stats.primary_inputs;
    Alcotest.(check int) (name ^ " PO") po s.Stats.primary_outputs;
    Alcotest.(check int) (name ^ " DFF") ff s.Stats.flip_flops;
    Alcotest.(check int) (name ^ " gates") gates s.Stats.gates
  in
  expect "s298" 3 6 14 119;
  expect "s344" 9 11 15 160;
  expect "s382" 3 6 21 158;
  expect "s510" 19 7 6 211

let test_extended_profiles_match () =
  List.iter
    (fun name ->
      match Suite.profile name with
      | None -> Alcotest.fail ("missing profile for " ^ name)
      | Some p ->
        let s = Stats.compute (Suite.find_exn name) in
        Alcotest.(check int) (name ^ " gates")
          p.Dcopt_netlist.Generator.gates s.Stats.gates;
        Alcotest.(check int) (name ^ " depth")
          p.Dcopt_netlist.Generator.logic_depth s.Stats.depth)
    Suite.extended_circuits

let test_extended_circuits_optimizable () =
  (* the wider suite must at least close timing and beat the fixed-Vt
     baseline; very deep circuits (s1488) legitimately gain less because
     300 MHz leaves no room for voltage scaling *)
  List.iter
    (fun name ->
      let p = Dcopt_core.Flow.prepare (Suite.find_exn name) in
      match
        ( (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
    (Dcopt_core.Scenario.of_prepared p),
          (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
            (Dcopt_core.Scenario.of_prepared p) )
      with
      | Some b, Some j ->
        let savings = Dcopt_opt.Solution.savings ~baseline:b j in
        Alcotest.(check bool)
          (Printf.sprintf "%s savings %.1fx > 2" name savings)
          true (savings > 2.0)
      | None, _ -> Alcotest.fail (name ^ " baseline infeasible")
      | _, None -> Alcotest.fail (name ^ " joint infeasible"))
    Suite.extended_circuits

let test_find_unknown () =
  (match Suite.find "s9999" with
  | Error msg ->
    (* the typed error should name the offending circuit *)
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "error names the circuit" true (contains "s9999" msg)
  | Ok _ -> Alcotest.fail "expected Error for unknown circuit");
  match Suite.find_exn "s9999" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_find_cached () =
  Alcotest.(check bool) "physically cached" true
    (Suite.find_exn "s298" == Suite.find_exn "s298")

let test_all_lists_everything () =
  let all = Suite.all () in
  Alcotest.(check int) "count" (List.length Suite.names) (List.length all);
  List.iter
    (fun (name, c) ->
      Alcotest.(check string) "name matches" name (Circuit.name c))
    all

let test_profile_none_for_s27 () =
  Alcotest.(check bool) "s27 is embedded, not generated" true
    (Suite.profile "s27" = None)

let test_cores_are_optimizable () =
  (* every suite circuit's core must be a valid combinational network with
     every gate reachable by the analyses *)
  List.iter
    (fun (name, c) ->
      let core = Circuit.combinational_core c in
      Alcotest.(check bool) (name ^ " comb") true (Circuit.is_combinational core);
      Alcotest.(check bool)
        (name ^ " nonempty")
        true
        (Circuit.gate_count core > 0);
      (* no gate with a DFF kind survives *)
      Array.iter
        (fun nd ->
          Alcotest.(check bool) "no dff in core" true (nd.Circuit.kind <> Gate.Dff))
        (Circuit.nodes core))
    (Suite.all ())

let test_data_files_roundtrip () =
  (* the shipped data/*.bench files must parse back to the same structure
     the suite generates *)
  let dir = "../../../data" in
  if Sys.file_exists dir then
    List.iter
      (fun name ->
        let path = Filename.concat dir (name ^ ".bench") in
        if Sys.file_exists path then begin
          let parsed = Dcopt_netlist.Bench_format.parse_file path in
          let s1 = Stats.compute parsed and s2 = Stats.compute (Suite.find_exn name) in
          Alcotest.(check int) (name ^ " gates") s2.Stats.gates s1.Stats.gates;
          Alcotest.(check int) (name ^ " depth") s2.Stats.depth s1.Stats.depth;
          Alcotest.(check int) (name ^ " fanout") s2.Stats.total_fanout
            s1.Stats.total_fanout
        end)
      Suite.names

let () =
  Alcotest.run "suite"
    [
      ( "s27",
        [
          Alcotest.test_case "structure" `Quick test_s27_structure;
          Alcotest.test_case "logic" `Quick test_s27_logic;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "generated match profiles" `Quick
            test_table_circuit_profiles_match;
          Alcotest.test_case "published sizes" `Quick test_published_iscas_sizes;
          Alcotest.test_case "s27 not generated" `Quick test_profile_none_for_s27;
          Alcotest.test_case "extended profiles" `Quick
            test_extended_profiles_match;
          Alcotest.test_case "extended optimizable" `Slow
            test_extended_circuits_optimizable;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unknown" `Quick test_find_unknown;
          Alcotest.test_case "cached" `Quick test_find_cached;
          Alcotest.test_case "all" `Quick test_all_lists_everything;
          Alcotest.test_case "cores optimizable" `Quick
            test_cores_are_optimizable;
          Alcotest.test_case "data files round-trip" `Quick
            test_data_files_roundtrip;
        ] );
    ]
