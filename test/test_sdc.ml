(* Tests for the constraint front door: the SDC-lite recovering parser
   (golden diagnostics — every injected error comes back located), the
   Constraints projection onto per-endpoint required times, and the
   bit-identity differentials that anchor the compatibility story:
   a uniform constraint seed must match the legacy scalar-target STA
   float for float, and the scalar compatibility set must leave
   Delay_assign / Flow.prepare untouched. *)

module Constraints = Dcopt_timing.Constraints
module Sdc = Dcopt_timing.Sdc
module Sta = Dcopt_timing.Sta
module Flat_sta = Dcopt_timing.Flat_sta
module Delay_assign = Dcopt_timing.Delay_assign
module Diag = Dcopt_util.Diag
module Circuit = Dcopt_netlist.Circuit
module Flat = Dcopt_netlist.Flat
module Flow = Dcopt_core.Flow
module Scenario = Dcopt_core.Scenario
module Power_model = Dcopt_opt.Power_model

let ns = 1e-9

let float_bits =
  Alcotest.testable
    (fun fmt v -> Format.fprintf fmt "%h" v)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let check_array_bits what expect got =
  Alcotest.(check (array float_bits)) what expect got

(* --- parsing ----------------------------------------------------------- *)

let good_sdc =
  String.concat "\n"
    [
      "# two clocks, the slower one explicit on a port";
      "create_clock -period 3.2 -name clk_fast [get_ports {G0 G1}]";
      "create_clock -period 6.4 \\";
      "  -waveform {0 3.2} G2  # continuation joins here";
      "set_max_delay 2.5 -to [get_ports G17]";
      "set_max_delay 5.0";
      "set_false_path -from G3 -to G17";
      "set_input_delay 0.4 -clock clk_fast [get_ports {G0 G1}]";
      "set_output_delay 0.2 -clock clk_fast G17";
      "set_units -time ns  # recognised but unmodelled: warning only";
    ]

let test_good_parse () =
  match Sdc.parse ~file:"good.sdc" good_sdc with
  | Error diags -> Alcotest.fail (Diag.render diags)
  | Ok t ->
    Alcotest.(check int) "clocks" 2 (List.length t.Constraints.clocks);
    let fast = List.hd t.Constraints.clocks in
    Alcotest.(check string) "first clock named" "clk_fast"
      fast.Constraints.clock_name;
    Alcotest.check float_bits "ns conversion" (3.2 *. ns)
      fast.Constraints.period;
    Alcotest.(check (list string)) "sources collected" [ "G0"; "G1" ]
      fast.Constraints.sources;
    let slow = List.nth t.Constraints.clocks 1 in
    Alcotest.(check string) "clock named by source port" "G2"
      slow.Constraints.clock_name;
    Alcotest.(check bool) "waveform kept" true
      (slow.Constraints.waveform = Some (0.0, 3.2 *. ns));
    Alcotest.(check (option float_bits)) "default period is the tightest"
      (Some (3.2 *. ns))
      (Constraints.default_period t);
    (* the named-endpoint 2.5 ns rule does not bound the whole budget;
       the endpoint-blind 5 ns rule is looser than the fast clock *)
    Alcotest.check float_bits "tightest cycle time" (3.2 *. ns)
      (Constraints.tightest_cycle_time t ~default:1.0);
    Alcotest.(check int) "max delays" 2 (List.length t.Constraints.max_delays);
    Alcotest.(check int) "false paths" 1
      (List.length t.Constraints.false_paths);
    Alcotest.(check int) "input delays fan out per port" 2
      (List.length t.Constraints.input_delays);
    Alcotest.(check int) "output delays" 1
      (List.length t.Constraints.output_delays);
    (* version-1 JSON round-trips structurally *)
    (match Constraints.of_json (Constraints.to_json t) with
    | Ok t' ->
      Alcotest.(check bool) "JSON round-trip" true (t = t')
    | Error msg -> Alcotest.fail msg)

let golden_sdc =
  String.concat "\n"
    [
      "create_clock -period 3.2 -name clk_fast [get_ports G0]";
      "create_clock -period 0 -name broken";
      "set_max_delay 2.5 -to [get_ports G17]";
      "frob_widget all";
      "set_output_delay 0.2 -clock phantom G17";
    ]

let test_golden_diagnostics () =
  (* three injected faults -> exactly three located errors, parse
     recovers across every one of them *)
  match Sdc.parse ~file:"golden.sdc" golden_sdc with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags ->
    let errs = Diag.errors diags in
    Alcotest.(check int) "exactly three errors" 3 (List.length errs);
    Alcotest.(check (list (pair string (option int))))
      "codes and lines"
      [
        ("sdc.range", Some 2); ("sdc.command", Some 4); ("sdc.clock", Some 5);
      ]
      (List.map (fun d -> (d.Diag.code, d.Diag.line)) errs);
    List.iter
      (fun d ->
        Alcotest.(check (option string)) "file stamped" (Some "golden.sdc")
          d.Diag.file)
      errs;
    let rendered = List.map Diag.to_string errs in
    Alcotest.(check string) "classic rendering"
      "golden.sdc:2: error[sdc.range]: create_clock: period must be > 0 (got 0)"
      (List.hd rendered);
    Alcotest.(check string) "unknown command named"
      "golden.sdc:4: error[sdc.command]: unknown command \"frob_widget\""
      (List.nth rendered 1);
    Alcotest.(check string) "unresolved clock named"
      "golden.sdc:5: error[sdc.clock]: unknown clock \"phantom\""
      (List.nth rendered 2)

let test_port_crosscheck () =
  (* with the circuit in hand, a misspelled port is a located sdc.port *)
  let circuit = Dcopt_suite.Suite.s27 () in
  let text = "create_clock -period 3.2 -name clk [get_ports {G0 NOPE}]" in
  (match Sdc.parse ~file:"ports.sdc" ~circuit text with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags ->
    let errs = Diag.errors diags in
    Alcotest.(check int) "one error" 1 (List.length errs);
    let d = List.hd errs in
    Alcotest.(check string) "code" "sdc.port" d.Diag.code;
    Alcotest.(check (option int)) "line" (Some 1) d.Diag.line);
  (* without the circuit the same file parses clean *)
  match Sdc.parse ~file:"ports.sdc" text with
  | Ok _ -> ()
  | Error diags -> Alcotest.fail (Diag.render diags)

(* --- per-endpoint projection ------------------------------------------- *)

let test_required_times_projection () =
  let circuit = Dcopt_suite.Suite.s27 () in
  let core = Circuit.combinational_core circuit in
  let g17 = Circuit.find core "G17" in
  let base = Constraints.of_cycle_time (10.0 *. ns) in
  (* a named max-delay rule tightens exactly its endpoint *)
  let tightened =
    {
      base with
      Constraints.max_delays =
        [ { Constraints.rule_from = []; rule_to = [ "G17" ]; bound = 5.0 *. ns } ];
    }
  in
  let req = Constraints.required_times tightened ~default:1.0 core in
  Alcotest.check float_bits "named endpoint tightened" (5.0 *. ns) req.(g17);
  Array.iter
    (fun id ->
      if id <> g17 then
        Alcotest.check float_bits "other outputs keep the clock budget"
          (10.0 *. ns) req.(id))
    (Circuit.outputs core);
  (* a false path releases its endpoint entirely *)
  let released =
    {
      base with
      Constraints.false_paths =
        [ { Constraints.exc_from = []; exc_to = [ "G17" ] } ];
    }
  in
  let req = Constraints.required_times released ~default:1.0 core in
  Alcotest.check float_bits "false path releases" infinity req.(g17);
  (* output delay eats into the capture budget *)
  let io =
    {
      base with
      Constraints.output_delays =
        [ { Constraints.port = "G17"; io_clock = None; io_delay = 2.0 *. ns } ];
    }
  in
  let req = Constraints.required_times io ~default:1.0 core in
  Alcotest.check float_bits "output delay subtracted"
    ((10.0 -. 2.0) *. ns)
    req.(g17)

(* --- bit-identity differentials ---------------------------------------- *)

let prepared_core name =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn name) in
  (p, p.Flow.core, Flow.budgets p)

let test_sta_uniform_seed_bit_identical () =
  let _, core, delays = prepared_core "s298" in
  let tc = 1.0 /. Flow.default_config.Flow.clock_frequency in
  let scalar = Sta.analyze ~required_time:tc core ~delays in
  let req =
    Constraints.required_times (Constraints.of_cycle_time tc) ~default:tc core
  in
  let seeded = Sta.analyze ~required_times:req core ~delays in
  check_array_bits "arrival" scalar.Sta.arrival seeded.Sta.arrival;
  check_array_bits "required" scalar.Sta.required seeded.Sta.required;
  check_array_bits "slack" scalar.Sta.slack seeded.Sta.slack;
  Alcotest.check float_bits "critical delay" scalar.Sta.critical_delay
    seeded.Sta.critical_delay;
  Array.iter
    (fun id ->
      Alcotest.check float_bits "endpoint slack accessor"
        scalar.Sta.slack.(id)
        (Sta.slack_of_endpoint seeded id))
    (Circuit.outputs core);
  Alcotest.(check bool) "meets_constraints coincides with meets" true
    (Sta.meets core ~delays ~cycle_time:tc
    = Sta.meets_constraints core ~delays ~required_times:req)

let test_flat_sta_uniform_seed_bit_identical () =
  let _, core, delays = prepared_core "s510" in
  let flat = Flat.of_circuit core in
  let tc = 1.0 /. Flow.default_config.Flow.clock_frequency in
  let scalar = Flat_sta.analyze ~required_time:tc flat ~delays in
  let req =
    Constraints.required_times (Constraints.of_cycle_time tc) ~default:tc core
  in
  let seeded = Flat_sta.analyze ~required_times:req flat ~delays in
  check_array_bits "arrival" scalar.Flat_sta.arrival seeded.Flat_sta.arrival;
  check_array_bits "required" scalar.Flat_sta.required seeded.Flat_sta.required;
  check_array_bits "slack" scalar.Flat_sta.slack seeded.Flat_sta.slack;
  (* and the flat constraint kernel matches the pointer-based engine *)
  let pointer = Sta.analyze ~required_times:req core ~delays in
  check_array_bits "flat matches Sta" pointer.Sta.slack seeded.Flat_sta.slack

let test_delay_assign_scalar_compat_identical () =
  let _, core, _ = prepared_core "s344" in
  let tc = 1.0 /. Flow.default_config.Flow.clock_frequency in
  let plain = Delay_assign.assign core ~cycle_time:tc in
  (* the scalar compatibility set supersedes the (deliberately wrong)
     positional cycle time and reproduces the legacy budgets exactly *)
  let via_constraints =
    Delay_assign.assign
      ~constraints:(Constraints.of_cycle_time tc)
      core ~cycle_time:(17.0 *. tc)
  in
  check_array_bits "budgets" plain.Delay_assign.t_max
    via_constraints.Delay_assign.t_max;
  Alcotest.check float_bits "cycle budget" plain.Delay_assign.cycle_budget
    via_constraints.Delay_assign.cycle_budget

let test_flow_scalar_compat_identical () =
  let circuit = Dcopt_suite.Suite.find_exn "s298" in
  let implicit = Flow.prepare circuit in
  let explicit =
    Flow.prepare
      ~constraints:
        (Constraints.of_cycle_time
           (1.0 /. Flow.default_config.Flow.clock_frequency))
      circuit
  in
  check_array_bits "prepared budgets" (Flow.budgets implicit)
    (Flow.budgets explicit);
  (* the scalar set short-circuits: no per-endpoint seeds reach the env *)
  Alcotest.(check bool) "no required-time seeds" true
    (Power_model.required_times explicit.Flow.env = None);
  Alcotest.(check bool) "no arrival seeds" true
    (Power_model.arrival_offsets explicit.Flow.env = None);
  let run s =
    (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run s
  in
  match
    (run (Scenario.of_prepared implicit), run (Scenario.of_prepared explicit))
  with
  | Some a, Some b ->
    Alcotest.check float_bits "joint energy bit-identical"
      (Dcopt_opt.Solution.total_energy a)
      (Dcopt_opt.Solution.total_energy b)
  | _ -> Alcotest.fail "joint should close on s298 both ways"

let test_constrained_sta_differs_when_tightened () =
  (* sanity that the per-endpoint path is live: tightening one endpoint
     below its arrival flips that endpoint's slack negative while the
     scalar analysis stays feasible *)
  let _, core, delays = prepared_core "s298" in
  let tc = 1.0 /. Flow.default_config.Flow.clock_frequency in
  let scalar = Sta.analyze ~required_time:tc core ~delays in
  let outputs = Circuit.outputs core in
  (* pick the latest-arriving output and halve its budget *)
  let victim =
    Array.fold_left
      (fun best id ->
        if scalar.Sta.arrival.(id) > scalar.Sta.arrival.(best) then id
        else best)
      outputs.(0) outputs
  in
  let name = (Circuit.node core victim).Circuit.name in
  let tightened =
    {
      (Constraints.of_cycle_time tc) with
      Constraints.max_delays =
        [
          {
            Constraints.rule_from = [];
            rule_to = [ name ];
            bound = scalar.Sta.arrival.(victim) /. 2.0;
          };
        ];
    }
  in
  let req = Constraints.required_times tightened ~default:tc core in
  let seeded = Sta.analyze ~required_times:req core ~delays in
  Alcotest.(check bool) "victim slack negative" true
    (Sta.slack_of_endpoint seeded victim < 0.0);
  Alcotest.(check bool) "scalar was feasible" true
    (Sta.slack_of_endpoint scalar victim >= 0.0);
  Alcotest.(check bool) "constraint check fails" false
    (Sta.meets_constraints core ~delays ~required_times:req)

(* --- scenarios --------------------------------------------------------- *)

let test_corners_of_spec () =
  (match Scenario.corners_of_spec "nominal,slow,leaky" with
  | Error diags -> Alcotest.fail (Diag.render diags)
  | Ok corners ->
    Alcotest.(check (list (pair string float_bits)))
      "presets resolved"
      [ ("nominal", 1.0); ("slow", 1.1); ("leaky", 0.9) ]
      (List.map
         (fun c -> (c.Scenario.corner_name, c.Scenario.vt_factor))
         corners));
  (match Scenario.corners_of_spec "hot:1.25" with
  | Error diags -> Alcotest.fail (Diag.render diags)
  | Ok [ c ] ->
    Alcotest.(check string) "custom name" "hot" c.Scenario.corner_name;
    Alcotest.check float_bits "custom factor" 1.25 c.Scenario.vt_factor
  | Ok _ -> Alcotest.fail "one corner expected");
  match Scenario.corners_of_spec "nominal,bogus" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags ->
    let d = List.hd (Diag.errors diags) in
    Alcotest.(check string) "config.corners code" "config.corners" d.Diag.code;
    Alcotest.(check (option string)) "command-line located"
      (Some "<command-line>") d.Diag.file

let test_scenario_legacy_identity () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s27") in
  let s = Scenario.of_prepared p in
  Alcotest.(check bool) "single nominal corner is legacy" true
    (Scenario.is_legacy s);
  (* identity by construction: the prepared view is the same record *)
  Alcotest.(check bool) "prepared view untouched" true
    (Scenario.prepared_view s == p);
  let sol =
    (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run s
  in
  Alcotest.(check bool) "finalize is identity on legacy" true
    (Scenario.finalize s sol == sol)

let test_scenario_multi_corner () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s298") in
  let corners =
    match Scenario.corners_of_spec "leaky,slow" with
    | Ok c -> c
    | Error diags -> Alcotest.fail (Diag.render diags)
  in
  let s = Scenario.make ~corners p in
  Alcotest.(check bool) "not legacy" false (Scenario.is_legacy s);
  Alcotest.(check string) "worst corner by vt factor" "slow"
    (Scenario.worst_corner s).Scenario.corner_name;
  (* the worst-corner view stresses Vt for timing closure *)
  let pv = Scenario.prepared_view s in
  Alcotest.check float_bits "vt stress applied" 1.1
    (Power_model.vt_stress pv.Flow.env);
  match
    (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run s
  with
  | None -> Alcotest.fail "two-corner joint should close on s298"
  | Some sol ->
    Alcotest.(check bool) "feasible across corners" true
      (Dcopt_opt.Solution.feasible sol);
    (* the booked objective is the first (leaky) corner's energy:
       re-evaluating the design there reproduces it bit for bit *)
    let leaky_env =
      Power_model.with_vt_stress p.Flow.env 0.9
    in
    let ev =
      Power_model.evaluate leaky_env sol.Dcopt_opt.Solution.design
    in
    Alcotest.check float_bits "objective booked at first corner"
      ev.Power_model.total_energy
      (Dcopt_opt.Solution.total_energy sol)

let () =
  Alcotest.run "sdc"
    [
      ( "parse",
        [
          Alcotest.test_case "good multi-clock file" `Quick test_good_parse;
          Alcotest.test_case "golden diagnostics" `Quick
            test_golden_diagnostics;
          Alcotest.test_case "port cross-check" `Quick test_port_crosscheck;
        ] );
      ( "projection",
        [
          Alcotest.test_case "required times" `Quick
            test_required_times_projection;
        ] );
      ( "bit identity",
        [
          Alcotest.test_case "Sta uniform seed" `Quick
            test_sta_uniform_seed_bit_identical;
          Alcotest.test_case "Flat_sta uniform seed" `Quick
            test_flat_sta_uniform_seed_bit_identical;
          Alcotest.test_case "Delay_assign scalar set" `Quick
            test_delay_assign_scalar_compat_identical;
          Alcotest.test_case "Flow scalar set" `Quick
            test_flow_scalar_compat_identical;
          Alcotest.test_case "tightened endpoint goes negative" `Quick
            test_constrained_sta_differs_when_tightened;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "corners of spec" `Quick test_corners_of_spec;
          Alcotest.test_case "legacy identity" `Quick
            test_scenario_legacy_identity;
          Alcotest.test_case "multi-corner" `Quick test_scenario_multi_corner;
        ] );
    ]
