(* Tests for the structured event log: JSONL sink validity, level
   filtering, scope layering, and the correlation chain
   run_id → batch_id → job_id threaded through a real batch — including
   retries and a checkpoint resume, which is where the log earns its
   keep. *)

module Events = Dcopt_obs.Events
module Metrics = Dcopt_obs.Metrics
module Service = Dcopt_service.Service
module Job = Dcopt_service.Job
module Checkpoint = Dcopt_service.Checkpoint
module Optimizer = Dcopt_core.Optimizer
module Flow = Dcopt_core.Flow
module Guard = Dcopt_opt.Guard
module Json = Dcopt_util.Json

(* fresh relative paths inside the dune sandbox *)
let temp_path =
  let n = ref 0 in
  fun stem ->
    incr n;
    Printf.sprintf "events_test_%s_%d.jsonl" stem !n

let clean_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)

(* open a fresh sink on [path], run [fn], close — the sink is process
   state, so every test scopes it *)
let with_sink ?min_level path fn =
  if Sys.file_exists path then Sys.remove path;
  Events.open_file ?min_level path;
  Fun.protect ~finally:(fun () -> Events.close ()) fn

let read_events path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (Json.of_string_exn line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let str k ev = Option.bind (Json.field k ev) Json.get_string
let int_f k ev = Option.bind (Json.field k ev) Json.get_int
let named name ev = str "event" ev = Some name
let find_all name evs = List.filter (named name) evs

let find_one name evs =
  match find_all name evs with
  | [ ev ] -> ev
  | evs ->
    Alcotest.fail
      (Printf.sprintf "%d %S events, want exactly 1" (List.length evs) name)

let check_str what expect k ev =
  Alcotest.(check (option string)) what expect (str k ev)

(* --- sink, scope layering, field order -------------------------------- *)

let test_sink_and_scope () =
  let path = temp_path "scope" in
  Events.set_run_id "test-run";
  with_sink ~min_level:Events.Debug path (fun () ->
      Alcotest.(check bool) "debug active" true (Events.active Events.Debug);
      Events.info "plain";
      Events.with_scope ~batch_id:7 (fun () ->
          Events.warn ~fields:[ ("x", Json.Int 1) ] "in-batch";
          Events.with_scope ~run_id:"override" ~job_id:"j1" (fun () ->
              Alcotest.(check
                          (triple (option string) (option int) (option string)))
                "scope resolves"
                (Some "override", Some 7, Some "j1")
                (Events.current_scope ());
              Events.debug "in-job"));
      Events.error "after");
  Alcotest.(check bool) "closed sink is inactive" false
    (Events.active Events.Error);
  let evs = read_events path in
  Alcotest.(check int) "four events" 4 (List.length evs);
  Alcotest.(check (list string)) "order preserved"
    [ "plain"; "in-batch"; "in-job"; "after" ]
    (List.filter_map (str "event") evs);
  let plain = find_one "plain" evs in
  check_str "global run_id" (Some "test-run") "run_id" plain;
  check_str "level" (Some "info") "level" plain;
  Alcotest.(check (option int)) "no batch scope" None (int_f "batch_id" plain);
  let in_batch = find_one "in-batch" evs in
  Alcotest.(check (option int)) "batch scope" (Some 7)
    (int_f "batch_id" in_batch);
  check_str "no job scope" None "job_id" in_batch;
  Alcotest.(check (option int)) "custom field" (Some 1) (int_f "x" in_batch);
  let in_job = find_one "in-job" evs in
  check_str "scoped run_id overrides" (Some "override") "run_id" in_job;
  Alcotest.(check (option int)) "batch_id inherited" (Some 7)
    (int_f "batch_id" in_job);
  check_str "job scope" (Some "j1") "job_id" in_job;
  (match Json.get_obj in_job with
  | Some kvs ->
    Alcotest.(check (list string)) "deterministic field order"
      [ "ts_ns"; "level"; "event"; "run_id"; "batch_id"; "job_id" ]
      (List.map fst kvs)
  | None -> Alcotest.fail "event is not an object");
  let after = find_one "after" evs in
  check_str "scope restored" (Some "test-run") "run_id" after;
  Alcotest.(check (option int)) "batch scope popped" None
    (int_f "batch_id" after);
  (* timestamps strictly increase across the log *)
  let ts =
    List.map
      (fun ev ->
        match int_f "ts_ns" ev with
        | Some t -> t
        | None -> Alcotest.fail "ts_ns missing")
      evs
  in
  ignore
    (List.fold_left
       (fun prev t ->
         Alcotest.(check bool) "ts_ns strictly increasing" true (t > prev);
         t)
       min_int ts)

let test_level_filtering () =
  let path = temp_path "levels" in
  with_sink ~min_level:Events.Warn path (fun () ->
      Alcotest.(check bool) "info inactive under warn" false
        (Events.active Events.Info);
      Events.debug "d";
      Events.info "i";
      Events.warn "w";
      Events.error "e");
  Alcotest.(check (list string)) "only warn and above written" [ "w"; "e" ]
    (List.filter_map (str "event") (read_events path))

(* --- correlation chain through a real batch --------------------------- *)

let () =
  Optimizer.register
    {
      Optimizer.name = "ev-flaky";
      doc = "fails twice, then delegates to the baseline";
      run =
        (let calls = Atomic.make 0 in
         fun ?observer:_ s ->
           if Atomic.fetch_and_add calls 1 < 2 then failwith "injected fault";
           (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run s);
    }

let test_batch_correlation_chain () =
  Events.set_run_id "test-run";
  let ckpt_dir = "events_test_ckpt" in
  clean_dir ckpt_dir;
  let job () = Job.make ~id:"evjob" ~optimizer:"ev-flaky" ~retries:2 "s27" in
  let path1 = temp_path "batch" in
  let rows1 =
    with_sink ~min_level:Events.Debug path1 (fun () ->
        Service.run_batch ~checkpoint:(Checkpoint.open_ ckpt_dir) [ job () ])
  in
  let evs = read_events path1 in
  (* every event of the batch carries the full chain *)
  let start = find_one "batch.start" evs in
  let batch_id = int_f "batch_id" start in
  Alcotest.(check bool) "batch_id assigned" true (batch_id <> None);
  Alcotest.(check (option int)) "one job announced" (Some 1)
    (int_f "jobs" start);
  List.iter
    (fun ev ->
      check_str "run_id on every event" (Some "test-run") "run_id" ev;
      Alcotest.(check (option int)) "batch_id on every event" batch_id
        (int_f "batch_id" ev))
    evs;
  List.iter
    (fun name ->
      List.iter
        (fun ev -> check_str (name ^ " carries job_id") (Some "evjob") "job_id" ev)
        (find_all name evs))
    [ "job.start"; "job.retry"; "job.done" ];
  (* two injected faults → two retry events naming the fault *)
  let retries = find_all "job.retry" evs in
  Alcotest.(check int) "two retries narrated" 2 (List.length retries);
  Alcotest.(check (list (option int))) "attempts numbered"
    [ Some 1; Some 2 ]
    (List.map (int_f "attempt") retries);
  List.iter
    (fun ev ->
      check_str "fault message" (Some "Failure(\"injected fault\")") "error" ev)
    retries;
  let done_ev = find_one "job.done" evs in
  Alcotest.(check (option int)) "third attempt succeeded" (Some 3)
    (int_f "attempts" done_ev);
  check_str "solved" (Some "solved") "status" done_ev;
  Alcotest.(check bool) "wall time measured" true
    (match int_f "wall_ns" done_ev with Some w -> w > 0 | None -> false);
  let finish = find_one "batch.done" evs in
  Alcotest.(check (option int)) "computed once" (Some 1)
    (int_f "computed" finish);
  Alcotest.(check (option int)) "no checkpoint hits cold" (Some 0)
    (int_f "checkpoint_hits" finish);
  (* resume: same checkpoint directory answers without computing, the log
     says so under the same job_id, and the rows are byte-identical *)
  let path2 = temp_path "resume" in
  let rows2 =
    with_sink ~min_level:Events.Debug path2 (fun () ->
        Service.run_batch ~checkpoint:(Checkpoint.open_ ckpt_dir) [ job () ])
  in
  let evs2 = read_events path2 in
  let hit = find_one "job.checkpoint_hit" evs2 in
  check_str "hit carries job_id" (Some "evjob") "job_id" hit;
  Alcotest.(check bool) "fresh batch_id on resume" true
    (int_f "batch_id" hit <> batch_id);
  Alcotest.(check int) "no job.start on resume" 0
    (List.length (find_all "job.start" evs2));
  Alcotest.(check (option int)) "resume computed nothing" (Some 0)
    (int_f "computed" (find_one "batch.done" evs2));
  Alcotest.(check (option int)) "resume hit the checkpoint" (Some 1)
    (int_f "checkpoint_hits" (find_one "batch.done" evs2));
  let render rows =
    String.concat "\n"
      (List.map (fun r -> Json.to_string (Job.row_to_json r)) rows)
  in
  Alcotest.(check string) "resumed rows byte-identical" (render rows1)
    (render rows2)

(* --- guard trips join the log ----------------------------------------- *)

let test_guard_trip_event () =
  let path = temp_path "guard" in
  Metrics.reset ();
  with_sink path (fun () ->
      Events.with_scope ~job_id:"g1" (fun () ->
          let v = Guard.clamp ~site:"test.site" nan in
          Alcotest.(check bool) "clamped to +inf" true (v = infinity)));
  let ev = find_one "guard.non_finite" (read_events path) in
  check_str "warn severity" (Some "warn") "level" ev;
  check_str "site named" (Some "test.site") "site" ev;
  check_str "action named" (Some "clamped") "action" ev;
  check_str "joins the job scope" (Some "g1") "job_id" ev;
  Metrics.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "events"
    [
      ( "sink",
        [
          Alcotest.test_case "scope layering and field order" `Quick
            test_sink_and_scope;
          Alcotest.test_case "level filtering" `Quick test_level_filtering;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "batch chain with retries and resume" `Quick
            test_batch_correlation_chain;
          Alcotest.test_case "guard trip" `Quick test_guard_trip_event;
        ] );
    ]
