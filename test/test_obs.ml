(* Tests for dcopt_obs: metrics registry semantics, span recording and
   nesting, Chrome trace-event export well-formedness, and the optimizer
   telemetry stream. *)

module Metrics = Dcopt_obs.Metrics
module Span = Dcopt_obs.Span
module Clock = Dcopt_obs.Clock
module Telemetry = Dcopt_obs.Telemetry
module Bench_gate = Dcopt_obs.Bench_gate
module Par = Dcopt_par.Par
module Json = Dcopt_util.Json
module Circuit = Dcopt_netlist.Circuit
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Power_model = Dcopt_opt.Power_model
module Heuristic = Dcopt_opt.Heuristic
module Budget_repair = Dcopt_opt.Budget_repair
module Tech = Dcopt_device.Tech

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock_strictly_increasing () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    Alcotest.(check bool) "strictly increasing" true (Int64.compare t !prev > 0);
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_semantics () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Alcotest.(check int) "fresh" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  Alcotest.(check int) "1 + 5" 6 (Metrics.value c);
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same instrument" 7 (Metrics.value c);
  (match Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type mismatch accepted");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c);
  Alcotest.(check bool) "registration survives reset" true
    (List.mem "test.counter" (Metrics.names ()))

let test_gauge_semantics () =
  Metrics.reset ();
  let g = Metrics.gauge "test.gauge" in
  check_float "fresh" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  Metrics.set g (-1.25);
  check_float "last write wins" (-1.25) (Metrics.gauge_value g);
  Metrics.reset ();
  check_float "reset zeroes" 0.0 (Metrics.gauge_value g)

let test_histogram_semantics () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histogram" in
  Alcotest.(check int) "fresh" 0 (Metrics.count h);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  Alcotest.(check int) "empty buckets" 0 (Array.length (Metrics.buckets h));
  (* push past the initial 16-slot buffer to exercise growth *)
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.count h);
  let xs = Metrics.samples h in
  Alcotest.(check int) "samples length" 100 (Array.length xs);
  check_float "observation order" 1.0 xs.(0);
  check_float "observation order (last)" 100.0 xs.(99);
  check_float "p50" 50.5 (Metrics.quantile h 0.5);
  check_float "p0" 1.0 (Metrics.quantile h 0.0);
  check_float "p100" 100.0 (Metrics.quantile h 1.0);
  let buckets = Metrics.buckets h in
  (* samples 1..100 span decades [1,10), [10,100), [100,1000) *)
  Alcotest.(check int) "log-scale decade count" 3 (Array.length buckets);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "buckets partition samples" 100 total;
  let lo0, hi0, c0 = buckets.(0) in
  check_float "first bucket lo" 1.0 lo0;
  check_float "first bucket hi" 10.0 hi0;
  Alcotest.(check int) "first decade holds 1..9" 9 c0;
  Metrics.observe (Metrics.histogram "test.histogram") (-3.0);
  let buckets = Metrics.buckets h in
  Alcotest.(check int) "non-positive leading bucket" 4 (Array.length buckets);
  let lo, _, c = buckets.(0) in
  check_float "leading bucket starts at 0" 0.0 lo;
  Alcotest.(check int) "leading bucket count" 1 c;
  Metrics.reset ();
  Alcotest.(check int) "reset empties" 0 (Metrics.count h)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_metrics_render_and_json () =
  Metrics.reset ();
  let c = Metrics.counter "test.render.counter" in
  Metrics.incr ~by:3 c;
  let h = Metrics.histogram "test.render.histogram" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0 ];
  let table = Metrics.render () in
  Alcotest.(check bool) "counter row present" true
    (contains ~needle:"test.render.counter" table);
  Alcotest.(check bool) "histogram row present" true
    (contains ~needle:"test.render.histogram" table);
  let lines = String.split_on_char '\n' (Metrics.to_json_lines ()) in
  Alcotest.(check bool) "one json line per metric" true
    (List.length (List.filter (fun l -> l <> "") lines)
    = List.length (Metrics.names ()))

(* The OpenMetrics exposition is checked family by family: the registry
   carries every module-level instrument in the binary, so the test
   filters the rendered lines down to its own metric names instead of
   golden-matching the whole document. *)
let test_openmetrics_render () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"count \"things\"\nover \\ lines" "test.om.counter" in
  Metrics.incr ~by:7 c;
  let g = Metrics.gauge "test.om.gauge" in
  Metrics.set g nan;
  ignore (Metrics.histogram ~help:"nothing yet" "test.om.empty");
  let h = Metrics.histogram "test.om.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0; -1.0 ];
  let out = Metrics.render_openmetrics () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  let block family = List.filter (contains ~needle:family) lines in
  Alcotest.(check (list string))
    "counter family: HELP escaping, TYPE, _total suffix"
    [
      "# HELP test_om_counter count \\\"things\\\"\\nover \\\\ lines";
      "# TYPE test_om_counter counter";
      "test_om_counter_total 7";
    ]
    (block "test_om_counter");
  Alcotest.(check (list string)) "gauge family: NaN sample"
    [ "# TYPE test_om_gauge gauge"; "test_om_gauge NaN" ]
    (block "test_om_gauge");
  Alcotest.(check (list string)) "empty histogram: +Inf bucket only"
    [
      "# HELP test_om_empty nothing yet";
      "# TYPE test_om_empty histogram";
      "test_om_empty_bucket{le=\"+Inf\"} 0";
      "test_om_empty_sum 0.0";
      "test_om_empty_count 0";
    ]
    (block "test_om_empty");
  Alcotest.(check (list string))
    "histogram family: cumulative buckets, exact sum and count"
    [
      "# TYPE test_om_hist histogram";
      "test_om_hist_bucket{le=\"0.1\"} 1";
      "test_om_hist_bucket{le=\"1.0\"} 2";
      "test_om_hist_bucket{le=\"10.0\"} 3";
      "test_om_hist_bucket{le=\"100.0\"} 4";
      "test_om_hist_bucket{le=\"+Inf\"} 4";
      "test_om_hist_sum 54.5";
      "test_om_hist_count 4";
    ]
    (block "test_om_hist");
  (match List.rev lines with
  | last :: _ -> Alcotest.(check string) "terminated by # EOF" "# EOF" last
  | [] -> Alcotest.fail "empty exposition");
  Metrics.reset ()

let test_histogram_reservoir () =
  Metrics.reset ();
  let h = Metrics.histogram "test.reservoir" in
  let n = Metrics.reservoir_cap + 5000 in
  for i = 1 to n do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count stays exact past the cap" n (Metrics.count h);
  Alcotest.(check int) "retained samples capped" Metrics.reservoir_cap
    (Array.length (Metrics.samples h));
  check_float "sum stays exact"
    (float_of_int (n * (n + 1) / 2))
    (Metrics.observed_sum h);
  check_float "mean stays exact"
    (float_of_int (n + 1) /. 2.0)
    (Metrics.mean h);
  let q = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "median estimate lands mid-stream" true
    (q > 0.3 *. float_of_int n && q < 0.7 *. float_of_int n);
  let first = Metrics.samples h in
  Metrics.reset ();
  for i = 1 to n do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check bool) "reset reseeds: identical stream, identical reservoir"
    true
    (first = Metrics.samples h);
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                               *)

let meas name ns = { Bench_gate.name; ns }

let test_bench_gate_verdicts () =
  let baseline = [ meas "kernel:a" 100.0; meas "incr:b" 50.0 ] in
  let ok = Bench_gate.check ~baseline ~current:baseline () in
  Alcotest.(check int) "one verdict per baseline entry" 2 (List.length ok);
  Alcotest.(check bool) "identical numbers pass" true (Bench_gate.all_ok ok);
  (* within the noise threshold *)
  let near = [ meas "kernel:a" 140.0; meas "incr:b" 50.0 ] in
  Alcotest.(check bool) "1.4x passes the 1.5x default" true
    (Bench_gate.all_ok (Bench_gate.check ~baseline ~current:near ()));
  (* the acceptance case: an injected 2x slowdown must gate *)
  let slowed = [ meas "kernel:a" 200.0; meas "incr:b" 50.0 ] in
  let verdicts = Bench_gate.check ~baseline ~current:slowed () in
  Alcotest.(check bool) "2x slowdown fails" false (Bench_gate.all_ok verdicts);
  (match Bench_gate.failures verdicts with
  | [ f ] ->
    Alcotest.(check string) "the slowed kernel is the failure" "kernel:a"
      f.Bench_gate.v_name;
    check_float "ratio reported" 2.0 f.Bench_gate.ratio
  | fs -> Alcotest.fail (Printf.sprintf "%d failures, want 1" (List.length fs)));
  Alcotest.(check bool) "report labels the regression" true
    (contains ~needle:"FAIL" (Bench_gate.render verdicts));
  (* a custom threshold moves the bar *)
  Alcotest.(check bool) "2x passes a 3x threshold" true
    (Bench_gate.all_ok
       (Bench_gate.check ~threshold:3.0 ~baseline ~current:slowed ()));
  (* coverage rot: a baseline kernel with no current measurement fails *)
  let partial = [ meas "kernel:a" 100.0 ] in
  let verdicts = Bench_gate.check ~baseline ~current:partial () in
  Alcotest.(check bool) "missing measurement fails" false
    (Bench_gate.all_ok verdicts);
  (match Bench_gate.failures verdicts with
  | [ f ] ->
    Alcotest.(check bool) "missing side is None" true
      (f.Bench_gate.current_ns = None)
  | _ -> Alcotest.fail "want exactly the missing kernel as failure");
  (* new kernels only on the current side don't gate yet *)
  let extra = baseline @ [ meas "kernel:new" 1.0 ] in
  Alcotest.(check int) "current-only kernels ignored" 2
    (List.length (Bench_gate.check ~baseline ~current:extra ()))

let test_bench_gate_json () =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "dcopt-bench-timing/1");
        ( "kernels",
          Json.List
            [
              Json.Obj
                [ ("name", Json.String "a"); ("ns_per_run", Json.Float 12.5) ];
              Json.Obj [ ("name", Json.String "b"); ("ns_per_run", Json.Null) ];
            ] );
        ( "incremental",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "c");
                  ("incr_ns_per_move", Json.Float 3.0);
                ];
            ] );
      ]
  in
  let ms = Bench_gate.measurements_of_json doc in
  Alcotest.(check (list string)) "namespaced, null timings skipped"
    [ "kernel:a"; "incr:c" ]
    (List.map (fun m -> m.Bench_gate.name) ms);
  check_float "kernel ns carried" 12.5 (List.hd ms).Bench_gate.ns;
  match Bench_gate.load_baseline "no_such_baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonexistent baseline loaded"

(* ------------------------------------------------------------------ *)
(* Minimal JSON checker (recursive descent), enough to validate the
   Chrome trace export without pulling in a JSON dependency.           *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let n = String.length s in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/') ->
          Buffer.add_char b (Option.get (peek ()));
          advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          Buffer.add_char b '?'
        | _ -> fail "bad escape");
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); J_obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); J_obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); J_list [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); J_list (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | J_obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_disabled_is_passthrough () =
  Span.set_enabled false;
  Span.reset ();
  let r = Span.with_ "invisible" (fun () -> 41 + 1) in
  Alcotest.(check int) "value returned" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.spans ()))

let record_nest () =
  Span.set_enabled true;
  Span.reset ();
  let r =
    Span.with_ "parent" (fun () ->
        let a = Span.with_ "child-a" (fun () -> 1) in
        let b =
          Span.with_ "child-b" (fun () ->
              Span.with_ "grandchild" ~args:[ ("k", "v") ] (fun () -> 2))
        in
        a + b)
  in
  Span.set_enabled false;
  Alcotest.(check int) "nested value" 3 r;
  Span.spans ()

let test_span_nesting_and_order () =
  let spans = record_nest () in
  Alcotest.(check (list string))
    "completion order (children first)"
    [ "child-a"; "grandchild"; "child-b"; "parent" ]
    (List.map (fun s -> s.Span.name) spans);
  Alcotest.(check (list int)) "depths" [ 1; 2; 1; 0 ]
    (List.map (fun s -> s.Span.depth) spans);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Span.name ^ " strictly positive duration")
        true
        (Int64.compare s.Span.dur_ns 0L > 0))
    spans;
  let find name = List.find (fun s -> s.Span.name = name) spans in
  let ends s = Int64.add s.Span.start_ns s.Span.dur_ns in
  let contains outer inner =
    Int64.compare outer.Span.start_ns inner.Span.start_ns <= 0
    && Int64.compare (ends inner) (ends outer) <= 0
  in
  let parent = find "parent" and child_b = find "child-b" in
  Alcotest.(check bool) "parent contains child-a" true
    (contains parent (find "child-a"));
  Alcotest.(check bool) "parent contains child-b" true (contains parent child_b);
  Alcotest.(check bool) "child-b contains grandchild" true
    (contains child_b (find "grandchild"));
  Alcotest.(check bool) "siblings ordered" true
    (Int64.compare (ends (find "child-a")) child_b.Span.start_ns <= 0);
  (* top-level total counts only depth 0 *)
  Alcotest.(check bool) "top-level total = parent duration" true
    (Int64.equal (Span.top_level_total_ns ()) parent.Span.dur_ns);
  let roll = Span.roll_up () in
  Alcotest.(check int) "roll-up has one row per name" 4 (List.length roll);
  List.iter
    (fun (_, calls, total) ->
      Alcotest.(check int) "one call each" 1 calls;
      Alcotest.(check bool) "positive total" true (Int64.compare total 0L > 0))
    roll

let test_span_closes_on_exception () =
  Span.set_enabled true;
  Span.reset ();
  (try
     Span.with_ "outer" (fun () ->
         ignore (Span.with_ "raises" (fun () -> failwith "boom")))
   with Failure _ -> ());
  Span.set_enabled false;
  let names = List.map (fun s -> s.Span.name) (Span.spans ()) in
  Alcotest.(check (list string)) "both spans closed" [ "raises"; "outer" ] names;
  let raises = List.hd (Span.spans ()) in
  Alcotest.(check int) "nested depth survives the raise" 1 raises.Span.depth

let test_chrome_export_well_formed () =
  let spans = record_nest () in
  let doc = parse_json (Span.export_chrome ()) in
  let events =
    match field "traceEvents" doc with
    | Some (J_list evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check int) "one event per span" (List.length spans)
    (List.length events);
  let num ev key =
    match field key ev with
    | Some (J_num f) -> f
    | _ -> Alcotest.fail (key ^ " missing or not a number")
  in
  List.iter
    (fun ev ->
      (match field "name" ev with
      | Some (J_str _) -> ()
      | _ -> Alcotest.fail "name missing");
      (match field "ph" ev with
      | Some (J_str "X") -> ()
      | _ -> Alcotest.fail "ph must be \"X\"");
      Alcotest.(check bool) "ts >= 0" true (num ev "ts" >= 0.0);
      Alcotest.(check bool) "dur > 0" true (num ev "dur" > 0.0);
      ignore (num ev "pid");
      ignore (num ev "tid"))
    events;
  let names =
    List.filter_map
      (fun ev -> match field "name" ev with Some (J_str s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Span.name ^ " exported") true
        (List.mem s.Span.name names))
    spans;
  (* grandchild args survive the round trip *)
  let grandchild =
    List.find (fun ev -> field "name" ev = Some (J_str "grandchild")) events
  in
  match field "args" grandchild with
  | Some (J_obj kvs) ->
    Alcotest.(check bool) "custom arg exported" true
      (List.assoc_opt "k" kvs = Some (J_str "v"))
  | _ -> Alcotest.fail "args missing"

(* A broken clock source must degrade to a 1 ns span and a counter bump,
   never an exception: tracing can't be allowed to kill a serve loop. *)
let test_span_clamp_defensive () =
  Metrics.reset ();
  Span.set_enabled true;
  Span.reset ();
  Span.record_span ~name:"backwards" ~start_ns:1000L ~end_ns:900L ();
  Span.record_span ~name:"zero-width" ~start_ns:1000L ~end_ns:1000L ();
  Span.record_span ~name:"forwards" ~start_ns:1000L ~end_ns:1500L ();
  Span.set_enabled false;
  let spans = Span.spans () in
  let dur name =
    (List.find (fun s -> s.Span.name = name) spans).Span.dur_ns
  in
  Alcotest.(check int64) "backwards interval clamped to 1" 1L (dur "backwards");
  Alcotest.(check int64) "zero interval clamped to 1" 1L (dur "zero-width");
  Alcotest.(check int64) "sane interval kept" 500L (dur "forwards");
  Alcotest.(check int) "clamps counted" 2
    (Metrics.value (Metrics.counter "span.clock_clamped"));
  Span.reset ();
  Metrics.reset ()

let test_multi_domain_merge () =
  Span.reset ();
  Span.set_enabled true;
  let seen = Atomic.make [] in
  let note_domain () =
    let id = (Domain.self () :> int) in
    let rec add () =
      let cur = Atomic.get seen in
      if not (List.mem id cur) then
        if not (Atomic.compare_and_set seen cur (id :: cur)) then add ()
    in
    add ()
  in
  let deadline = Int64.add (Clock.now_ns ()) 2_000_000_000L in
  let rendezvous i =
    Span.with_ "pool.task" ~args:[ ("i", string_of_int i) ] (fun () ->
        note_domain ();
        (* hold the span open until a second domain joins (bounded by the
           deadline), so the merged trace provably crosses domains *)
        while
          List.length (Atomic.get seen) < 2
          && Int64.compare (Clock.now_ns ()) deadline < 0
        do
          Domain.cpu_relax ()
        done;
        i * i)
  in
  let out = Par.map ~jobs:4 rendezvous (Array.init 8 (fun i -> i)) in
  Span.set_enabled false;
  Alcotest.(check bool) "results positioned by index" true
    (out = Array.init 8 (fun i -> i * i));
  Alcotest.(check bool) "two domains participated" true
    (List.length (Atomic.get seen) >= 2);
  let merged = Span.merged () in
  Alcotest.(check int) "every task span merged" 8 (List.length merged);
  let tids = List.sort_uniq compare (List.map fst merged) in
  Alcotest.(check bool) "merge spans >= 2 tids" true (List.length tids >= 2);
  let rec sorted = function
    | (t1, s1) :: ((t2, s2) :: _ as rest) ->
      (t1 < t2
      || (t1 = t2 && Int64.compare s1.Span.start_ns s2.Span.start_ns < 0))
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "merge strictly ordered by (tid, start)" true
    (sorted merged);
  (* the Chrome export puts each domain on its own trace row *)
  let doc = parse_json (Span.export_chrome ()) in
  let events =
    match field "traceEvents" doc with
    | Some (J_list evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  let ev_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun ev ->
           match field "tid" ev with Some (J_num t) -> Some t | _ -> None)
         events)
  in
  Alcotest.(check bool) "chrome trace has >= 2 tids" true
    (List.length ev_tids >= 2);
  (* logical content is scheduling-independent: a jobs=1 replay records
     the same span multiset *)
  let key (_, s) = s.Span.name ^ "#" ^ List.assoc "i" s.Span.args in
  let keys4 = List.sort compare (List.map key merged) in
  Span.reset ();
  Span.set_enabled true;
  let plain i =
    Span.with_ "pool.task" ~args:[ ("i", string_of_int i) ] (fun () -> i * i)
  in
  let out1 = Par.map ~jobs:1 plain (Array.init 8 (fun i -> i)) in
  Span.set_enabled false;
  Alcotest.(check bool) "jobs=1 results identical" true (out = out1);
  let keys1 = List.sort compare (List.map key (Span.merged ())) in
  Alcotest.(check (list string)) "jobs=4 and jobs=1 record the same spans"
    keys4 keys1;
  Span.reset ()

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let mk_iteration i =
  {
    Telemetry.optimizer = "test";
    index = i;
    vdd = 1.0;
    vt = 0.2;
    static_energy = 1e-15;
    dynamic_energy = 2e-15;
    total_energy = 3e-15;
    feasible = i mod 2 = 0;
  }

let test_telemetry_combinators () =
  let r1 = Telemetry.recorder () and r2 = Telemetry.recorder () in
  let obs =
    Telemetry.tee (Telemetry.record r1)
      (Telemetry.relabel "renamed" (Telemetry.record r2))
  in
  for i = 0 to 4 do
    obs (mk_iteration i)
  done;
  Telemetry.null (mk_iteration 99);
  Alcotest.(check int) "tee feeds first" 5 (Telemetry.count r1);
  Alcotest.(check int) "tee feeds second" 5 (Telemetry.count r2);
  let its1 = Telemetry.iterations r1 and its2 = Telemetry.iterations r2 in
  Alcotest.(check string) "original label" "test" its1.(0).Telemetry.optimizer;
  Alcotest.(check string) "relabel rewrites" "renamed"
    its2.(0).Telemetry.optimizer;
  Alcotest.(check int) "arrival order" 4 its1.(4).Telemetry.index

let test_telemetry_to_metrics () =
  Metrics.reset ();
  let obs = Telemetry.to_metrics () in
  for i = 0 to 9 do
    obs (mk_iteration i)
  done;
  Alcotest.(check int) "iteration counter" 10
    (Metrics.value (Metrics.counter "opt.test.iterations"));
  Alcotest.(check int) "infeasible counter" 5
    (Metrics.value (Metrics.counter "opt.test.infeasible"));
  Alcotest.(check int) "vdd histogram sees all" 10
    (Metrics.count (Metrics.histogram "opt.test.iteration.vdd"));
  Alcotest.(check int) "energy histogram sees feasible only" 5
    (Metrics.count (Metrics.histogram "opt.test.iteration.total_energy"));
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Heuristic observer on s27: deterministic, bounded by M^3            *)

let s27_env () =
  let tech = Tech.default in
  let fc = 300e6 in
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27") in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc core profile in
  let raw =
    (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max
  in
  let budgets =
    match
      Budget_repair.repair env ~budgets:raw ~vdd:tech.Tech.vdd_max
        ~vt:tech.Tech.vt_min
    with
    | Budget_repair.Repaired { budgets; _ } -> budgets
    | Budget_repair.Infeasible _ -> raw
  in
  (env, budgets)

let observed_run env ~budgets =
  let recorder = Telemetry.recorder () in
  let sol =
    Heuristic.optimize ~observer:(Telemetry.record recorder) env ~budgets
  in
  (sol, Telemetry.iterations recorder)

let test_heuristic_observer_deterministic () =
  let env, budgets = s27_env () in
  let sol1, its1 = observed_run env ~budgets in
  let _sol2, its2 = observed_run env ~budgets in
  Alcotest.(check bool) "found a solution" true (sol1 <> None);
  Alcotest.(check bool) "saw iterations" true (Array.length its1 > 0);
  Alcotest.(check int) "iteration count deterministic" (Array.length its1)
    (Array.length its2);
  let m = 16 in
  Alcotest.(check bool) "bounded by M^3" true
    (Array.length its1 <= m * m * m);
  Array.iteri
    (fun i it ->
      Alcotest.(check int) "indices are the stream position" i
        it.Telemetry.index;
      Alcotest.(check string) "labelled heuristic" "heuristic"
        it.Telemetry.optimizer;
      let it2 = its2.(i) in
      check_float "vdd replays" it.Telemetry.vdd it2.Telemetry.vdd;
      check_float "vt replays" it.Telemetry.vt it2.Telemetry.vt;
      Alcotest.(check bool) "feasibility replays" it.Telemetry.feasible
        it2.Telemetry.feasible;
      if it.Telemetry.feasible then begin
        check_float "energy sums" it.Telemetry.total_energy
          (it.Telemetry.static_energy +. it.Telemetry.dynamic_energy);
        Alcotest.(check bool) "feasible energy positive" true
          (it.Telemetry.total_energy > 0.0)
      end)
    its1;
  (* the winning energy is one the observer saw *)
  match sol1 with
  | None -> ()
  | Some sol ->
    let best = Dcopt_opt.Solution.total_energy sol in
    Alcotest.(check bool) "solution energy appears in the stream" true
      (Array.exists
         (fun it ->
           it.Telemetry.feasible
           && Float.abs (it.Telemetry.total_energy -. best)
              <= 1e-9 *. Float.abs best)
         its1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "strictly increasing" `Quick
            test_clock_strictly_increasing ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "render and json" `Quick
            test_metrics_render_and_json;
          Alcotest.test_case "openmetrics render" `Quick
            test_openmetrics_render;
          Alcotest.test_case "reservoir sampling" `Quick
            test_histogram_reservoir;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "verdicts" `Quick test_bench_gate_verdicts;
          Alcotest.test_case "timing json" `Quick test_bench_gate_json;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_is_passthrough;
          Alcotest.test_case "nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
          Alcotest.test_case "chrome export" `Quick
            test_chrome_export_well_formed;
          Alcotest.test_case "clock clamp" `Quick test_span_clamp_defensive;
          Alcotest.test_case "multi-domain merge" `Quick
            test_multi_domain_merge;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "combinators" `Quick test_telemetry_combinators;
          Alcotest.test_case "to_metrics" `Quick test_telemetry_to_metrics;
          Alcotest.test_case "heuristic observer deterministic" `Quick
            test_heuristic_observer_deterministic;
        ] );
    ]
