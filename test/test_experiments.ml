module Experiments = Dcopt_core.Experiments
module Flow = Dcopt_core.Flow

let quick_config = { Flow.default_config with Flow.m_steps = 8 }

let test_table1_rows () =
  let rows =
    Experiments.table1 ~config:quick_config ~circuits:[ "s298" ]
      ~activities:[| 0.1; 0.5 |] ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check string) "circuit" "s298" r.Experiments.circuit;
      Alcotest.(check bool) "fixed vt" true
        (Float.abs (r.Experiments.vt -. 0.7) < 1e-9);
      Alcotest.(check bool) "leakage negligible at 700 mV" true
        (r.Experiments.static_energy < 1e-3 *. r.Experiments.dynamic_energy);
      Alcotest.(check bool) "no savings column" true
        (r.Experiments.savings = None);
      Alcotest.(check bool) "meets 300 MHz" true
        (r.Experiments.critical_delay <= 1.0 /. 300e6))
    rows

let test_table2_rows () =
  let rows =
    Experiments.table2 ~config:quick_config ~circuits:[ "s298" ]
      ~activities:[| 0.1; 0.5 |] ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "low vt" true (r.Experiments.vt < 0.3);
      Alcotest.(check bool) "low vdd" true (r.Experiments.vdd < 1.5);
      Alcotest.(check bool) "static comparable to dynamic" true
        (r.Experiments.static_energy > 0.05 *. r.Experiments.dynamic_energy);
      match r.Experiments.savings with
      | None -> Alcotest.fail "savings expected"
      | Some s -> Alcotest.(check bool) "big savings" true (s > 5.0))
    rows;
  (* the paper: savings grow with input activity *)
  match rows with
  | [ low; high ] ->
    Alcotest.(check bool) "savings grow with activity" true
      (Option.get high.Experiments.savings > Option.get low.Experiments.savings)
  | _ -> Alcotest.fail "expected exactly two rows"

let test_render_table () =
  let rows =
    Experiments.table1 ~config:quick_config ~circuits:[ "s27" ]
      ~activities:[| 0.1 |] ()
  in
  let s = Experiments.render_table ~title:"Table 1" rows in
  Alcotest.(check bool) "has title" true
    (String.length s > 7 && String.sub s 0 7 = "Table 1")

let test_fig2a_shape () =
  let points =
    Experiments.fig2a ~config:quick_config ~circuit:"s298"
      ~tolerances:[| 0.0; 0.2 |] ()
  in
  Alcotest.(check int) "both points" 2 (Array.length points);
  Alcotest.(check bool) "savings fall with tolerance" true
    (points.(0).Dcopt_opt.Variation.savings
    > points.(1).Dcopt_opt.Variation.savings);
  ignore (Experiments.render_fig2a points)

let test_fig2b_shape () =
  let points =
    Experiments.fig2b ~config:quick_config ~circuit:"s298"
      ~factors:[| 1.0; 2.0 |] ()
  in
  Alcotest.(check int) "both points" 2 (Array.length points);
  Alcotest.(check bool) "savings rise with slack" true
    (points.(1).Dcopt_opt.Slack_sweep.savings
    > points.(0).Dcopt_opt.Slack_sweep.savings);
  ignore (Experiments.render_fig2b points)

let test_annealing_comparison () =
  let rows =
    Experiments.annealing_comparison ~config:quick_config ~circuits:[ "s298" ] ()
  in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  (* both optimizers land in the same energy regime; the heuristic is the
     faster of the two by a wide margin *)
  Alcotest.(check bool) "heuristic competitive on energy" true
    (r.Experiments.annealing_vs_heuristic > 0.4);
  Alcotest.(check bool) "heuristic faster" true
    (r.Experiments.heuristic_seconds < r.Experiments.annealing_seconds);
  ignore (Experiments.render_annealing rows)

let test_ablation_budget () =
  let rows = Experiments.ablation_budget ~config:quick_config ~circuit:"s298" () in
  Alcotest.(check int) "two variants" 2 (List.length rows);
  match rows with
  | [ proc1; uniform ] ->
    Alcotest.(check string) "labels" "procedure-1" proc1.Experiments.label;
    (* both budgeting schemes must close timing and land in the same
       order of magnitude; which one wins depends on the circuit (see
       EXPERIMENTS.md for the measured discussion) *)
    Alcotest.(check bool) "same regime" true
      (let ratio = proc1.Experiments.value /. uniform.Experiments.value in
       ratio > 0.1 && ratio < 10.0);
    ignore (Experiments.render_ablation ~title:"budget" rows)
  | _ -> Alcotest.fail "unexpected shape"

let test_ablation_activity () =
  let rows =
    Experiments.ablation_activity ~config:quick_config ~circuit:"s27" ()
  in
  Alcotest.(check int) "four engines" 4 (List.length rows);
  List.iter
    (fun r -> Alcotest.(check bool) "positive energy" true (r.Experiments.value > 0.0))
    rows;
  (* all engines agree within 2x on this small circuit *)
  let values = List.map (fun r -> r.Experiments.value) rows in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max 0.0 values in
  Alcotest.(check bool) "engines agree within 2x" true (hi /. lo < 2.0)

let test_ablation_multi_vt () =
  let rows =
    Experiments.ablation_multi_vt ~config:quick_config ~circuit:"s27" ()
  in
  match rows with
  | [ single; dual ] ->
    Alcotest.(check bool) "dual no worse" true
      (dual.Experiments.value <= single.Experiments.value *. (1.0 +. 1e-9))
  | _ -> Alcotest.fail "expected two rows"

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table 1" `Slow test_table1_rows;
          Alcotest.test_case "table 2" `Slow test_table2_rows;
          Alcotest.test_case "render" `Quick test_render_table;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig 2a" `Slow test_fig2a_shape;
          Alcotest.test_case "fig 2b" `Slow test_fig2b_shape;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "annealing" `Slow test_annealing_comparison;
          Alcotest.test_case "ablation budget" `Slow test_ablation_budget;
          Alcotest.test_case "ablation activity" `Quick test_ablation_activity;
          Alcotest.test_case "ablation multi-vt" `Slow test_ablation_multi_vt;
        ] );
    ]
