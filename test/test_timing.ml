module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Patterns = Dcopt_netlist.Patterns
module Generator = Dcopt_netlist.Generator
module Sta = Dcopt_timing.Sta
module Kpaths = Dcopt_timing.Kpaths
module Delay_assign = Dcopt_timing.Delay_assign

let diamond () =
  (* a -> {fast, slow1 -> slow2} -> out *)
  Circuit.create ~name:"diamond"
    ~nodes:
      [
        ("a", Gate.Input, []);
        ("fast", Gate.Not, [ "a" ]);
        ("slow1", Gate.Not, [ "a" ]);
        ("slow2", Gate.Not, [ "slow1" ]);
        ("out", Gate.And, [ "fast"; "slow2" ]);
      ]
    ~outputs:[ "out" ]

let delays_of c assoc =
  let d = Array.make (Circuit.size c) 0.0 in
  List.iter (fun (name, v) -> d.(Circuit.find c name) <- v) assoc;
  d

(* ------------------------------------------------------------------ *)
(* STA                                                                 *)

let test_sta_arrival () =
  let c = diamond () in
  let delays =
    delays_of c [ ("fast", 1.0); ("slow1", 2.0); ("slow2", 3.0); ("out", 1.0) ]
  in
  let r = Sta.analyze c ~delays in
  Alcotest.(check (float 1e-9)) "critical" 6.0 r.Sta.critical_delay;
  Alcotest.(check (float 1e-9)) "out arrival" 6.0
    r.Sta.arrival.(Circuit.find c "out");
  Alcotest.(check (float 1e-9)) "fast arrival" 1.0
    r.Sta.arrival.(Circuit.find c "fast")

let test_sta_slack () =
  let c = diamond () in
  let delays =
    delays_of c [ ("fast", 1.0); ("slow1", 2.0); ("slow2", 3.0); ("out", 1.0) ]
  in
  let r = Sta.analyze c ~delays in
  (* critical path gates have zero slack *)
  Alcotest.(check (float 1e-9)) "slow1 slack" 0.0
    r.Sta.slack.(Circuit.find c "slow1");
  Alcotest.(check (float 1e-9)) "slow2 slack" 0.0
    r.Sta.slack.(Circuit.find c "slow2");
  Alcotest.(check (float 1e-9)) "fast slack" 4.0
    r.Sta.slack.(Circuit.find c "fast")

let test_sta_required_time_override () =
  let c = diamond () in
  let delays =
    delays_of c [ ("fast", 1.0); ("slow1", 2.0); ("slow2", 3.0); ("out", 1.0) ]
  in
  let r = Sta.analyze ~required_time:10.0 c ~delays in
  Alcotest.(check (float 1e-9)) "extra slack" 4.0
    r.Sta.slack.(Circuit.find c "out")

let test_sta_critical_path () =
  let c = diamond () in
  let delays =
    delays_of c [ ("fast", 1.0); ("slow1", 2.0); ("slow2", 3.0); ("out", 1.0) ]
  in
  let path = List.map (fun id -> (Circuit.node c id).Circuit.name)
      (Sta.critical_path c ~delays) in
  Alcotest.(check (list string)) "path" [ "slow1"; "slow2"; "out" ] path

let test_sta_meets () =
  let c = diamond () in
  let delays =
    delays_of c [ ("fast", 1.0); ("slow1", 2.0); ("slow2", 3.0); ("out", 1.0) ]
  in
  Alcotest.(check bool) "meets 7" true (Sta.meets c ~delays ~cycle_time:7.0);
  Alcotest.(check bool) "misses 5" false (Sta.meets c ~delays ~cycle_time:5.0)

(* ------------------------------------------------------------------ *)
(* K paths                                                             *)

let test_effective_fanout_floor () =
  let c = diamond () in
  (* out is a PO with no gate fanouts: effective fanout 1 *)
  Alcotest.(check int) "po gate" 1
    (Kpaths.effective_fanout c (Circuit.find c "out"))

let test_kpaths_diamond () =
  let c = diamond () in
  let paths = List.of_seq (Kpaths.enumerate c) in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  (* criticality sums: fast path = f(fast)+f(out) = 1+1; slow = 1+1+1 *)
  match paths with
  | [ p1; p2 ] ->
    Alcotest.(check int) "most critical first" 3 p1.Kpaths.criticality;
    Alcotest.(check int) "then the short one" 2 p2.Kpaths.criticality
  | _ -> Alcotest.fail "expected exactly two"

let test_kpaths_nonincreasing_property =
  QCheck.Test.make ~name:"paths emitted in non-increasing criticality"
    ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "kp";
               primary_inputs = 4;
               primary_outputs = 3;
               flip_flops = 2;
               gates = 30;
               logic_depth = 5;
               seed = Some (Int64.of_int seed);
             })
      in
      let paths = List.of_seq (Kpaths.enumerate ~max_paths:200 c) in
      let rec non_increasing = function
        | a :: (b :: _ as rest) ->
          a.Kpaths.criticality >= b.Kpaths.criticality && non_increasing rest
        | _ -> true
      in
      non_increasing paths)

let test_kpaths_paths_are_connected =
  QCheck.Test.make ~name:"every emitted path is a fanin chain ending at a PO"
    ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "kpc";
               primary_inputs = 4;
               primary_outputs = 2;
               flip_flops = 3;
               gates = 40;
               logic_depth = 6;
               seed = Some (Int64.of_int seed);
             })
      in
      let ok_path p =
        let rec chained = function
          | a :: (b :: _ as rest) ->
            Array.exists (fun g -> g = b) (Circuit.fanouts c a) && chained rest
          | _ -> true
        in
        let ends_at_po =
          match List.rev p.Kpaths.gate_ids with
          | last :: _ -> Circuit.is_output c last
          | [] -> false
        in
        let crit_ok =
          p.Kpaths.criticality
          = List.fold_left
              (fun acc id -> acc + Kpaths.effective_fanout c id)
              0 p.Kpaths.gate_ids
        in
        chained p.Kpaths.gate_ids && ends_at_po && crit_ok
      in
      Kpaths.enumerate ~max_paths:100 c |> List.of_seq |> List.for_all ok_path)

let test_kpaths_ladder_count () =
  (* the ladder is a chain of 5 gates, each with its own fresh input, so
     there is exactly one PI-to-PO path per possible start gate *)
  let c = Patterns.and_or_ladder ~rungs:5 in
  let paths = List.of_seq (Kpaths.enumerate c) in
  Alcotest.(check int) "path count" 5 (List.length paths)

let test_most_critical () =
  let c = diamond () in
  match Kpaths.most_critical c with
  | Some p -> Alcotest.(check int) "criticality" 3 p.Kpaths.criticality
  | None -> Alcotest.fail "expected a path"

(* ------------------------------------------------------------------ *)
(* Delay assignment (Procedure 1)                                      *)

let test_assign_diamond () =
  let c = diamond () in
  let b = Delay_assign.assign ~skew_factor:1.0 c ~cycle_time:6.0 in
  let t = b.Delay_assign.t_max in
  (* slow path (3 gates, fanouts 1,1,1) splits 6.0 into three equal parts *)
  Alcotest.(check (float 1e-9)) "slow1" 2.0 (t.(Circuit.find c "slow1"));
  Alcotest.(check (float 1e-9)) "slow2" 2.0 (t.(Circuit.find c "slow2"));
  Alcotest.(check (float 1e-9)) "out" 2.0 (t.(Circuit.find c "out"));
  (* the fast path then gets the remaining budget: 6 - 2 = 4 *)
  Alcotest.(check (float 1e-9)) "fast" 4.0 (t.(Circuit.find c "fast"))

let test_assign_weights_by_fanout () =
  (* two-gate chain where the first gate has fanout 2 *)
  let c =
    Circuit.create ~name:"weighted"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("g1", Gate.Not, [ "a" ]);
          ("g2", Gate.And, [ "g1"; "a" ]);
          ("g3", Gate.Or, [ "g1"; "g2" ]);
        ]
      ~outputs:[ "g3" ]
  in
  let b = Delay_assign.assign ~skew_factor:1.0 c ~cycle_time:4.0 in
  let t = b.Delay_assign.t_max in
  (* most critical path g1(fo 2), g2(fo 1), g3(fo 1): shares 2:1:1 *)
  Alcotest.(check (float 1e-9)) "g1 twice the share" 2.0
    (t.(Circuit.find c "g1"));
  Alcotest.(check (float 1e-9)) "g2" 1.0 (t.(Circuit.find c "g2"));
  Alcotest.(check (float 1e-9)) "g3" 1.0 (t.(Circuit.find c "g3"))

let budgets_meet_cycle_property =
  QCheck.Test.make
    ~name:"assigned budgets never exceed the cycle on any path" ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, depth_extra) ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "budget";
               primary_inputs = 5;
               primary_outputs = 4;
               flip_flops = 3;
               gates = 60;
               logic_depth = 5 + depth_extra;
               seed = Some (Int64.of_int seed);
             })
      in
      let b = Delay_assign.assign c ~cycle_time:3.33e-9 in
      Delay_assign.verify c b ~cycle_time:3.33e-9)

let budgets_positive_property =
  QCheck.Test.make ~name:"every gate gets a positive budget" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "pos";
               primary_inputs = 4;
               primary_outputs = 3;
               flip_flops = 2;
               gates = 50;
               logic_depth = 6;
               seed = Some (Int64.of_int seed);
             })
      in
      let b = Delay_assign.assign c ~cycle_time:3.33e-9 in
      Array.for_all
        (fun nd ->
          match nd.Circuit.kind with
          | Gate.Input | Gate.Dff -> true
          | _ -> b.Delay_assign.t_max.(nd.Circuit.id) > 0.0)
        (Circuit.nodes c))

let test_assign_rejects_bad_args () =
  let c = diamond () in
  (match Delay_assign.assign c ~cycle_time:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle_time 0");
  match Delay_assign.assign ~skew_factor:1.5 c ~cycle_time:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "skew 1.5"

let test_assign_dangling_gets_fallback () =
  let c =
    Circuit.create ~name:"dangling"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("g1", Gate.Not, [ "a" ]);
          ("dead", Gate.Not, [ "g1" ]); (* drives nothing, not a PO *)
          ("out", Gate.Not, [ "g1" ]);
        ]
      ~outputs:[ "out" ]
  in
  let b = Delay_assign.assign ~skew_factor:1.0 c ~cycle_time:2.0 in
  Alcotest.(check bool) "dead gate budgeted" true
    (b.Delay_assign.t_max.(Circuit.find c "dead") > 0.0);
  Alcotest.(check int) "one fallback" 1 b.Delay_assign.fallback_gates

(* ------------------------------------------------------------------ *)
(* Incremental STA                                                     *)

(* Regression: a [recompute] that raises mid-bucket (the optimizers'
   Guard.Non_finite abort path) must not strand still-queued gates.
   Before the fix, ids after the raising one kept queued=true while the
   bucket accounting had already been reset, so mark_dirty skipped them
   forever and the engine silently stopped updating their timing. *)
let test_incr_sta_raise_mid_bucket () =
  let module Incr_sta = Dcopt_timing.Incr_sta in
  (* g1 fans out to two gates at the same level, so one move queues a
     two-entry bucket and the raise can happen on its first entry. *)
  let c =
    Circuit.create ~name:"fork"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("g1", Gate.Not, [ "a" ]);
          ("g2a", Gate.Not, [ "g1" ]);
          ("g2b", Gate.Not, [ "g1" ]);
        ]
      ~outputs:[ "g2a"; "g2b" ]
  in
  let g1 = Circuit.find c "g1" in
  let g2a = Circuit.find c "g2a" and g2b = Circuit.find c "g2b" in
  let ist = Incr_sta.create c in
  Incr_sta.refresh ist ~recompute:(fun ~id:_ ~max_fanin_delay:_ -> 1.0);
  Incr_sta.commit ist;
  (* Move: g1's delay becomes 2.0; recompute blows up on the level-2
     bucket, i.e. after g1 was stepped and both fanouts were queued. *)
  Incr_sta.mark_dirty ist g1;
  (try
     ignore
       (Incr_sta.propagate ist ~recompute:(fun ~id ~max_fanin_delay:_ ->
            if id = g1 then 2.0 else raise Exit));
     Alcotest.fail "expected the recompute to raise"
   with Exit -> Incr_sta.rollback ist);
  let arrival = Incr_sta.arrivals ist in
  Alcotest.(check (float 0.0)) "rolled back" 2.0 arrival.(g2a);
  (* Same move again with healthy physics: every gate of the cone must
     be recomputed, including the ones abandoned by the raise. *)
  Incr_sta.mark_dirty ist g1;
  let processed =
    Incr_sta.propagate ist ~recompute:(fun ~id ~max_fanin_delay:_ ->
        if id = g1 then 2.0 else 1.0)
  in
  Incr_sta.commit ist;
  Alcotest.(check int) "full cone recomputed" 3 processed;
  Alcotest.(check (float 0.0)) "g1 arrival" 2.0 arrival.(g1);
  Alcotest.(check (float 0.0)) "g2a arrival" 3.0 arrival.(g2a);
  Alcotest.(check (float 0.0)) "g2b arrival" 3.0 arrival.(g2b)

let () =
  Alcotest.run "timing"
    [
      ( "sta",
        [
          Alcotest.test_case "arrival" `Quick test_sta_arrival;
          Alcotest.test_case "slack" `Quick test_sta_slack;
          Alcotest.test_case "required override" `Quick
            test_sta_required_time_override;
          Alcotest.test_case "critical path" `Quick test_sta_critical_path;
          Alcotest.test_case "meets" `Quick test_sta_meets;
        ] );
      ( "kpaths",
        [
          Alcotest.test_case "effective fanout" `Quick
            test_effective_fanout_floor;
          Alcotest.test_case "diamond" `Quick test_kpaths_diamond;
          Alcotest.test_case "ladder count" `Quick test_kpaths_ladder_count;
          Alcotest.test_case "most critical" `Quick test_most_critical;
          QCheck_alcotest.to_alcotest test_kpaths_nonincreasing_property;
          QCheck_alcotest.to_alcotest test_kpaths_paths_are_connected;
        ] );
      ( "delay assignment",
        [
          Alcotest.test_case "diamond shares" `Quick test_assign_diamond;
          Alcotest.test_case "fanout weighting" `Quick
            test_assign_weights_by_fanout;
          Alcotest.test_case "bad arguments" `Quick test_assign_rejects_bad_args;
          Alcotest.test_case "dangling fallback" `Quick
            test_assign_dangling_gets_fallback;
          QCheck_alcotest.to_alcotest budgets_meet_cycle_property;
          QCheck_alcotest.to_alcotest budgets_positive_property;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "raise mid-bucket leaves engine usable" `Quick
            test_incr_sta_raise_mid_bucket;
        ] );
    ]
