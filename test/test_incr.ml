(* Differential property test of the incremental evaluation engine.

   Power_model.Incr maintains delays, arrivals, critical delay and running
   energy totals under single-gate and global moves. These tests drive the
   engine through long random move sequences — width and per-gate Vt moves
   (the incremental paths), global Vdd and uniform-Vt moves (the full
   fallback paths), multi-move transactions and interleaved rollbacks —
   and after every apply AND every rollback compare the engine's state
   against a fresh full Power_model.evaluate of the live design, to
   <= 1e-9 relative error (the delay path is bit-identical by
   construction; the energy totals may drift at round-off). *)

module Circuit = Dcopt_netlist.Circuit
module Generator = Dcopt_netlist.Generator
module Tech = Dcopt_device.Tech
module Activity = Dcopt_activity.Activity
module Power_model = Dcopt_opt.Power_model
module Incr = Dcopt_opt.Power_model.Incr
module Prng = Dcopt_util.Prng
module Numeric = Dcopt_util.Numeric

let tech = Tech.default
let fc = 300e6
let tolerance = 1e-9

let check_rel what reference fast =
  let err =
    if reference = fast then 0.0 (* covers infinities and exact hits *)
    else Float.abs (fast -. reference) /. Float.max 1e-300 (Float.abs reference)
  in
  if not (err <= tolerance) then
    Alcotest.failf "%s: reference %.17g incr %.17g (rel err %g)" what reference
      fast err

let make_env ?include_short_circuit core =
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  Power_model.make_env ?include_short_circuit ~tech ~fc core profile

(* The oracle: a full evaluation of the engine's live design must agree
   with every maintained quantity. *)
let compare_state what env inc =
  let e = Power_model.evaluate env (Incr.design inc) in
  check_rel (what ^ " static") e.Power_model.static_energy
    (Incr.static_energy inc);
  check_rel (what ^ " dynamic") e.Power_model.dynamic_energy
    (Incr.dynamic_energy inc);
  check_rel (what ^ " short-circuit") e.Power_model.short_circuit_energy
    (Incr.short_circuit_energy inc);
  check_rel (what ^ " total") e.Power_model.total_energy
    (Incr.total_energy inc);
  check_rel (what ^ " critical") e.Power_model.critical_delay
    (Incr.critical_delay inc);
  Alcotest.(check bool) (what ^ " feasible") e.Power_model.feasible
    (Incr.feasible inc);
  let delays = Incr.delays inc in
  Array.iteri
    (fun id d -> check_rel (Printf.sprintf "%s delay[%d]" what id) d delays.(id))
    e.Power_model.delays

(* One random move applied directly to the engine. The mix exercises both
   incremental paths (width 60%, per-gate Vt 20%) and both full-fallback
   paths (global Vdd 10%, uniform Vt 10%). *)
let random_move inc gates rng =
  let design = Incr.design inc in
  let choice = Prng.float rng 1.0 in
  if choice < 0.6 then begin
    let id = gates.(Prng.int rng (Array.length gates)) in
    let factor = exp (Prng.gaussian rng ~mean:0.0 ~sigma:0.5) in
    Incr.set_width inc id
      (Numeric.clamp ~lo:tech.Tech.w_min ~hi:tech.Tech.w_max
         (design.Power_model.widths.(id) *. factor))
  end
  else if choice < 0.8 then begin
    let id = gates.(Prng.int rng (Array.length gates)) in
    Incr.set_vt inc id
      (Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
         (Prng.gaussian rng ~mean:design.Power_model.vt.(id) ~sigma:0.05))
  end
  else if choice < 0.9 then
    Incr.set_vdd inc
      (Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
         (Prng.gaussian rng ~mean:design.Power_model.vdd ~sigma:0.1))
  else
    Incr.set_vt_uniform inc
      (Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
         (Prng.gaussian rng ~mean:design.Power_model.vt.(gates.(0)) ~sigma:0.05))

let run_moves ?include_short_circuit ~moves ~seed name core () =
  let env = make_env ?include_short_circuit core in
  let design =
    Power_model.uniform_design env
      ~vdd:(0.8 *. tech.Tech.vdd_max)
      ~vt:(0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max))
      ~w:4.0
  in
  let inc = Incr.create env design in
  compare_state (name ^ " initial") env inc;
  let gates = Power_model.gate_ids env in
  let rng = Prng.create seed in
  for move = 1 to moves do
    let what k = Printf.sprintf "%s move %d %s" name move k in
    random_move inc gates rng;
    (* occasionally stack a second move into the same transaction, so the
       journals must unwind more than one write in order *)
    if Prng.float rng 1.0 < 0.25 then random_move inc gates rng;
    compare_state (what "applied") env inc;
    if Prng.float rng 1.0 < 0.5 then begin
      Incr.rollback inc;
      compare_state (what "rolled back") env inc
    end
    else Incr.commit inc
  done

let s27 () = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27")
let s298 () = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s298")

let adder () =
  Circuit.combinational_core
    (Dcopt_netlist.Patterns.ripple_carry_adder ~bits:8)

let random_dag () =
  Generator.generate
    {
      Generator.profile_name = "incr-dag";
      primary_inputs = 8;
      primary_outputs = 6;
      flip_flops = 0;
      gates = 60;
      logic_depth = 8;
      seed = Some 42L;
    }

let () =
  Alcotest.run "incr"
    [
      ( "differential",
        [
          Alcotest.test_case "s27: 200 moves match full evaluate" `Quick
            (run_moves ~moves:200 ~seed:0x127L "s27" (s27 ()));
          Alcotest.test_case "s298 core: 200 moves match full evaluate" `Quick
            (run_moves ~moves:200 ~seed:0x51298L "s298" (s298 ()));
          Alcotest.test_case "adder8: 200 moves match full evaluate" `Quick
            (run_moves ~moves:200 ~seed:0xADD8L "adder8" (adder ()));
          Alcotest.test_case "random dag: 200 moves match full evaluate"
            `Quick
            (run_moves ~moves:200 ~seed:0xDA6L "dag" (random_dag ()));
          Alcotest.test_case
            "s27 + short-circuit: 200 moves match full evaluate" `Quick
            (run_moves ~include_short_circuit:true ~moves:200 ~seed:0x5CL
               "s27-sc" (s27 ()));
        ] );
    ]
