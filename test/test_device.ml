module Tech = Dcopt_device.Tech
module Mosfet = Dcopt_device.Mosfet
module Delay = Dcopt_device.Delay
module Energy = Dcopt_device.Energy
module Body_bias = Dcopt_device.Body_bias

let tech = Tech.default

let representative_load =
  {
    Delay.fanin_count = 2;
    stack_depth = 2;
    cap_fanout_gates = 3.0e-15;
    cap_wire = 2.0e-15;
    res_wire_terms = 1.0e-13;
    flight_time = 5.0e-14;
    max_fanin_delay = 1.0e-10;
  }

(* ------------------------------------------------------------------ *)
(* Tech                                                               *)

let test_default_valid () =
  match Tech.validate tech with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_validate_catches_bad () =
  let bad = { tech with Tech.alpha = -1.0 } in
  Alcotest.(check bool) "negative alpha" true (Result.is_error (Tech.validate bad));
  let bad = { tech with Tech.vdd_min = 5.0 } in
  Alcotest.(check bool) "empty vdd range" true (Result.is_error (Tech.validate bad));
  let bad = { tech with Tech.w_min = 200.0 } in
  Alcotest.(check bool) "empty w range" true (Result.is_error (Tech.validate bad))

let test_subthreshold_scale () =
  let nvt = Tech.subthreshold_scale tech in
  Alcotest.(check (float 1e-12)) "alpha * S / ln 10"
    (tech.Tech.alpha *. tech.Tech.s_swing /. log 10.0)
    nvt

(* ------------------------------------------------------------------ *)
(* Mosfet                                                             *)

let test_overdrive_limits () =
  (* far above threshold: tends to vgs - vt *)
  let od = Mosfet.overdrive tech ~vgs:3.3 ~vt:0.7 in
  Alcotest.(check bool) "superthreshold limit" true
    (Float.abs (od -. 2.6) < 0.01);
  (* far below: exponentially small but positive *)
  let od_sub = Mosfet.overdrive tech ~vgs:0.0 ~vt:0.7 in
  Alcotest.(check bool) "subthreshold positive" true
    (od_sub > 0.0 && od_sub < 1e-5)

let test_i_drive_monotone_vdd () =
  let prev = ref 0.0 in
  Array.iter
    (fun vdd ->
      let i = Mosfet.i_drive tech ~vdd ~vt:0.3 in
      Alcotest.(check bool) "increasing in vdd" true (i > !prev);
      prev := i)
    (Dcopt_util.Numeric.linspace ~lo:0.2 ~hi:3.3 ~n:20)

let test_i_drive_monotone_vt () =
  let prev = ref infinity in
  Array.iter
    (fun vt ->
      let i = Mosfet.i_drive tech ~vdd:1.5 ~vt in
      Alcotest.(check bool) "decreasing in vt" true (i < !prev);
      prev := i)
    (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:0.7 ~n:20)

let test_i_off_monotone_and_positive () =
  let prev = ref infinity in
  Array.iter
    (fun vt ->
      let i = Mosfet.i_off tech ~vt in
      Alcotest.(check bool) "positive" true (i > 0.0);
      Alcotest.(check bool) "decreasing in vt" true (i < !prev);
      prev := i)
    (Dcopt_util.Numeric.linspace ~lo:0.05 ~hi:0.8 ~n:30)

let test_i_off_junction_floor () =
  (* at very high vt the junction component dominates *)
  let i = Mosfet.i_off tech ~vt:1.5 in
  Alcotest.(check bool) "floors at junction leakage" true
    (i >= tech.Tech.i_junction
    && i < 2.0 *. tech.Tech.i_junction)

let test_i_off_swing () =
  (* one s_swing of threshold shift changes subthreshold leakage ~10x *)
  let i1 = Mosfet.i_off_subthreshold tech ~vt:0.3 in
  let i2 = Mosfet.i_off_subthreshold tech ~vt:(0.3 +. tech.Tech.s_swing) in
  let decade = i1 /. i2 in
  Alcotest.(check bool) "one decade per swing" true
    (decade > 8.0 && decade < 12.0)

let test_transregional_continuity () =
  (* the composite I-V is smooth through vdd = vt *)
  let vt = 0.4 in
  let below = Mosfet.i_drive tech ~vdd:(vt -. 0.001) ~vt in
  let above = Mosfet.i_drive tech ~vdd:(vt +. 0.001) ~vt in
  Alcotest.(check bool) "continuous at threshold" true
    (above /. below < 1.1 && above > below)

let test_on_off_ratio () =
  let r_high = Mosfet.on_off_ratio tech ~vdd:3.3 ~vt:0.7 in
  let r_low = Mosfet.on_off_ratio tech ~vdd:0.9 ~vt:0.15 in
  Alcotest.(check bool) "high vt has huge ratio" true (r_high > 1e8);
  Alcotest.(check bool) "low vt ratio smaller but >1" true
    (r_low > 10.0 && r_low < r_high)

let test_is_subthreshold () =
  Alcotest.(check bool) "sub" true (Mosfet.is_subthreshold tech ~vdd:0.2 ~vt:0.3);
  Alcotest.(check bool) "super" false
    (Mosfet.is_subthreshold tech ~vdd:1.0 ~vt:0.3)

(* ------------------------------------------------------------------ *)
(* Delay                                                              *)

let test_slope_coefficient_bounds () =
  Array.iter
    (fun vdd ->
      Array.iter
        (fun vt ->
          let c = Delay.slope_coefficient tech ~vdd ~vt in
          Alcotest.(check bool) "in [0, 0.9]" true (c >= 0.0 && c <= 0.9))
        (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:0.7 ~n:7))
    (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:3.3 ~n:7)

let test_slope_coefficient_increases_with_vt () =
  let a = Delay.slope_coefficient tech ~vdd:1.0 ~vt:0.1 in
  let b = Delay.slope_coefficient tech ~vdd:1.0 ~vt:0.5 in
  Alcotest.(check bool) "higher vt, larger coefficient" true (b > a)

let test_delay_monotone_in_width () =
  let prev = ref infinity in
  Array.iter
    (fun w ->
      let d = Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w representative_load in
      Alcotest.(check bool) "decreasing in w" true (d <= !prev);
      prev := d)
    (Dcopt_util.Numeric.linspace ~lo:1.0 ~hi:100.0 ~n:30)

let test_delay_monotone_in_vdd () =
  let prev = ref infinity in
  Array.iter
    (fun vdd ->
      let d = Delay.gate_delay tech ~vdd ~vt:0.2 ~w:4.0 representative_load in
      Alcotest.(check bool) "decreasing in vdd" true (d < !prev);
      prev := d)
    (Dcopt_util.Numeric.linspace ~lo:0.4 ~hi:3.3 ~n:20)

let test_delay_monotone_in_vt () =
  let prev = ref 0.0 in
  Array.iter
    (fun vt ->
      let d = Delay.gate_delay tech ~vdd:1.2 ~vt ~w:4.0 representative_load in
      Alcotest.(check bool) "increasing in vt" true (d > !prev);
      prev := d)
    (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:0.7 ~n:20)

let test_delay_increases_with_load () =
  let light = Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0 representative_load in
  let heavy =
    Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0
      { representative_load with Delay.cap_wire = 20.0e-15 }
  in
  Alcotest.(check bool) "more wire, more delay" true (heavy > light)

let test_delay_infinite_when_leakage_wins () =
  (* enormous fanin count at tiny overdrive: off-current overwhelms drive *)
  let load = { representative_load with Delay.fanin_count = 1000 } in
  let d = Delay.gate_delay tech ~vdd:0.12 ~vt:0.7 ~w:1.0 load in
  Alcotest.(check bool) "infinite" true (d = infinity)

let test_stack_and_slope_terms_present () =
  let base = { Delay.no_load with Delay.cap_wire = 2e-15 } in
  let with_stack =
    { base with Delay.fanin_count = 4; stack_depth = 4 }
  in
  let d1 = Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0 base in
  let d2 = Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0 with_stack in
  Alcotest.(check bool) "stack slows the gate" true (d2 > d1);
  let with_slope = { base with Delay.max_fanin_delay = 1e-9 } in
  let d3 = Delay.gate_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0 with_slope in
  Alcotest.(check bool) "input slope slows the gate" true (d3 > d1)

let test_output_capacitance_formula () =
  let c = Delay.output_capacitance tech ~w:3.0 representative_load in
  let expected =
    (tech.Tech.c_parasitic *. 3.0)
    +. (1.0 *. tech.Tech.c_intermediate *. 3.0)
    +. 3.0e-15 +. 2.0e-15
  in
  Alcotest.(check (float 1e-20)) "c_out" expected c

(* ------------------------------------------------------------------ *)
(* Energy                                                             *)

let test_static_energy_scaling () =
  let e1 = Energy.static_energy tech ~fc:300e6 ~vdd:1.0 ~vt:0.2 ~w:2.0 in
  let e2 = Energy.static_energy tech ~fc:300e6 ~vdd:2.0 ~vt:0.2 ~w:2.0 in
  let e3 = Energy.static_energy tech ~fc:300e6 ~vdd:1.0 ~vt:0.2 ~w:4.0 in
  let e4 = Energy.static_energy tech ~fc:600e6 ~vdd:1.0 ~vt:0.2 ~w:2.0 in
  Alcotest.(check (float 1e-25)) "linear in vdd" (2.0 *. e1) e2;
  Alcotest.(check (float 1e-25)) "linear in w" (2.0 *. e1) e3;
  Alcotest.(check (float 1e-25)) "inverse in fc" (e1 /. 2.0) e4

let test_dynamic_energy_scaling () =
  let e vdd a =
    Energy.dynamic_energy tech ~vdd ~w:2.0 ~activity:a
      ~load:representative_load
  in
  Alcotest.(check (float 1e-25)) "quadratic in vdd" (4.0 *. e 1.0 0.1)
    (e 2.0 0.1);
  Alcotest.(check (float 1e-25)) "linear in activity" (5.0 *. e 1.0 0.1)
    (e 1.0 0.5)

let test_total_energy_sum () =
  let s = Energy.static_energy tech ~fc:300e6 ~vdd:1.0 ~vt:0.2 ~w:2.0 in
  let d =
    Energy.dynamic_energy tech ~vdd:1.0 ~w:2.0 ~activity:0.1
      ~load:representative_load
  in
  let t =
    Energy.total_energy tech ~fc:300e6 ~vdd:1.0 ~vt:0.2 ~w:2.0 ~activity:0.1
      ~load:representative_load
  in
  Alcotest.(check (float 1e-25)) "sum" (s +. d) t

let test_power_energy_consistency () =
  let fc = 250e6 in
  let p = Energy.static_power tech ~vdd:1.0 ~vt:0.2 ~w:2.0 in
  let e = Energy.static_energy tech ~fc ~vdd:1.0 ~vt:0.2 ~w:2.0 in
  Alcotest.(check (float 1e-25)) "P = E * fc" p (e *. fc)

(* ------------------------------------------------------------------ *)
(* Tech file I/O                                                      *)

module Tech_io = Dcopt_device.Tech_io

let test_tech_io_roundtrip () =
  let text = Tech_io.to_string tech in
  let parsed = Tech_io.parse_string text in
  Alcotest.(check bool) "round-trip" true (parsed = tech)

let test_tech_io_partial_override () =
  let parsed = Tech_io.parse_string "alpha = 1.3\nname = custom\n" in
  Alcotest.(check (float 1e-12)) "overridden" 1.3 parsed.Tech.alpha;
  Alcotest.(check string) "renamed" "custom" parsed.Tech.tech_name;
  Alcotest.(check (float 1e-12)) "inherited" tech.Tech.k_drive
    parsed.Tech.k_drive

let test_tech_io_comments_and_blanks () =
  let parsed =
    Tech_io.parse_string "# a comment\n\n  alpha = 1.2  # trailing\n"
  in
  Alcotest.(check (float 1e-12)) "parsed through noise" 1.2 parsed.Tech.alpha

let test_tech_io_unknown_key () =
  match Tech_io.parse_string "frobnicate = 3\n" with
  | exception Tech_io.Parse_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "expected Parse_error on unknown key"

let test_tech_io_bad_number () =
  match Tech_io.parse_string "alpha = banana\n" with
  | exception Tech_io.Parse_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "expected Parse_error on bad number"

let test_tech_io_missing_equals () =
  match Tech_io.parse_string "just words\n" with
  | exception Tech_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_tech_io_validation () =
  match Tech_io.parse_string "alpha = -1\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected validation failure"

let test_temperature_scaling () =
  let hot = Tech.at_temperature tech ~celsius:125.0 in
  let cold = Tech.at_temperature tech ~celsius:0.0 in
  Alcotest.(check bool) "validates" true (Result.is_ok (Tech.validate hot));
  (* 25 C is the reference: identity up to the name *)
  let same = Tech.at_temperature tech ~celsius:25.0 in
  Alcotest.(check (float 1e-12)) "reference swing" tech.Tech.s_swing
    same.Tech.s_swing;
  Alcotest.(check bool) "swing grows with T" true
    (hot.Tech.s_swing > tech.Tech.s_swing
    && cold.Tech.s_swing < tech.Tech.s_swing);
  Alcotest.(check bool) "drive degrades with T" true
    (hot.Tech.k_drive < tech.Tech.k_drive);
  (* leakage at fixed vt grows steeply on the hot die *)
  let leak t = Mosfet.i_off t ~vt:0.2 in
  Alcotest.(check bool) "hot die leaks substantially more" true
    (leak hot > 1.5 *. leak tech);
  Alcotest.(check bool) "cold die leaks less" true (leak cold < leak tech)

let test_tech_scale_properties () =
  let scaled = Tech.scale tech ~factor:0.7 in
  Alcotest.(check bool) "validates" true (Result.is_ok (Tech.validate scaled));
  Alcotest.(check (float 1e-18)) "feature scales"
    (tech.Tech.feature_size *. 0.7) scaled.Tech.feature_size;
  Alcotest.(check (float 1e-12)) "vdd ceiling scales"
    (tech.Tech.vdd_max *. 0.7) scaled.Tech.vdd_max;
  Alcotest.(check (float 1e-12)) "swing does not scale" tech.Tech.s_swing
    scaled.Tech.s_swing;
  Alcotest.(check bool) "wire resistance grows" true
    (scaled.Tech.wire_res_per_m > tech.Tech.wire_res_per_m)

(* ------------------------------------------------------------------ *)
(* Body bias                                                          *)

let test_body_bias_zero () =
  Alcotest.(check (float 1e-12)) "no bias, natural vt" tech.Tech.vt_natural
    (Body_bias.vt_of_bias tech ~vsb:0.0)

let test_body_bias_monotone () =
  let prev = ref 0.0 in
  Array.iter
    (fun vsb ->
      let vt = Body_bias.vt_of_bias tech ~vsb in
      Alcotest.(check bool) "increasing" true (vt > !prev);
      prev := vt)
    (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:5.0 ~n:20)

let test_body_bias_roundtrip () =
  Array.iter
    (fun vt ->
      match Body_bias.bias_for_vt tech ~vt with
      | Some vsb ->
        Alcotest.(check (float 1e-9)) "round-trip" vt
          (Body_bias.vt_of_bias tech ~vsb)
      | None -> Alcotest.fail "expected reachable")
    (Dcopt_util.Numeric.linspace ~lo:0.1 ~hi:0.3 ~n:10)

let test_body_bias_unreachable () =
  Alcotest.(check bool) "below natural" true
    (Body_bias.bias_for_vt tech ~vt:0.01 = None);
  Alcotest.(check bool) "beyond safety" true
    (Body_bias.bias_for_vt tech ~vt:5.0 = None)

let () =
  Alcotest.run "device"
    [
      ( "tech",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "validate rejects" `Quick test_validate_catches_bad;
          Alcotest.test_case "subthreshold scale" `Quick test_subthreshold_scale;
        ] );
      ( "mosfet",
        [
          Alcotest.test_case "overdrive limits" `Quick test_overdrive_limits;
          Alcotest.test_case "i_drive vs vdd" `Quick test_i_drive_monotone_vdd;
          Alcotest.test_case "i_drive vs vt" `Quick test_i_drive_monotone_vt;
          Alcotest.test_case "i_off monotone" `Quick
            test_i_off_monotone_and_positive;
          Alcotest.test_case "junction floor" `Quick test_i_off_junction_floor;
          Alcotest.test_case "subthreshold swing" `Quick test_i_off_swing;
          Alcotest.test_case "transregional continuity" `Quick
            test_transregional_continuity;
          Alcotest.test_case "on/off ratio" `Quick test_on_off_ratio;
          Alcotest.test_case "is_subthreshold" `Quick test_is_subthreshold;
        ] );
      ( "delay",
        [
          Alcotest.test_case "slope bounds" `Quick test_slope_coefficient_bounds;
          Alcotest.test_case "slope vs vt" `Quick
            test_slope_coefficient_increases_with_vt;
          Alcotest.test_case "monotone in w" `Quick test_delay_monotone_in_width;
          Alcotest.test_case "monotone in vdd" `Quick test_delay_monotone_in_vdd;
          Alcotest.test_case "monotone in vt" `Quick test_delay_monotone_in_vt;
          Alcotest.test_case "load sensitivity" `Quick
            test_delay_increases_with_load;
          Alcotest.test_case "leakage stall" `Quick
            test_delay_infinite_when_leakage_wins;
          Alcotest.test_case "stack and slope terms" `Quick
            test_stack_and_slope_terms_present;
          Alcotest.test_case "output capacitance" `Quick
            test_output_capacitance_formula;
        ] );
      ( "energy",
        [
          Alcotest.test_case "static scaling" `Quick test_static_energy_scaling;
          Alcotest.test_case "dynamic scaling" `Quick
            test_dynamic_energy_scaling;
          Alcotest.test_case "total is sum" `Quick test_total_energy_sum;
          Alcotest.test_case "power/energy" `Quick
            test_power_energy_consistency;
        ] );
      ( "tech io",
        [
          Alcotest.test_case "round-trip" `Quick test_tech_io_roundtrip;
          Alcotest.test_case "partial override" `Quick
            test_tech_io_partial_override;
          Alcotest.test_case "comments" `Quick test_tech_io_comments_and_blanks;
          Alcotest.test_case "unknown key" `Quick test_tech_io_unknown_key;
          Alcotest.test_case "bad number" `Quick test_tech_io_bad_number;
          Alcotest.test_case "missing equals" `Quick
            test_tech_io_missing_equals;
          Alcotest.test_case "validation" `Quick test_tech_io_validation;
          Alcotest.test_case "scaling" `Quick test_tech_scale_properties;
          Alcotest.test_case "temperature" `Quick test_temperature_scaling;
        ] );
      ( "body bias",
        [
          Alcotest.test_case "zero bias" `Quick test_body_bias_zero;
          Alcotest.test_case "monotone" `Quick test_body_bias_monotone;
          Alcotest.test_case "round-trip" `Quick test_body_bias_roundtrip;
          Alcotest.test_case "unreachable" `Quick test_body_bias_unreachable;
        ] );
    ]
