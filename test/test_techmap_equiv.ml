(* Tests for bounded-fanin decomposition and BDD equivalence checking,
   which validate each other. *)

module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Tech_map = Dcopt_netlist.Tech_map
module Generator = Dcopt_netlist.Generator
module Patterns = Dcopt_netlist.Patterns
module Equiv = Dcopt_activity.Equiv

let wide_gate kind fanin =
  let inputs = List.init fanin (fun i -> (Printf.sprintf "x%d" i, Gate.Input, [])) in
  Circuit.create ~name:"wide"
    ~nodes:(inputs @ [ ("y", kind, List.init fanin (Printf.sprintf "x%d")) ])
    ~outputs:[ "y" ]

(* ------------------------------------------------------------------ *)
(* Equivalence checker                                                 *)

let test_equiv_self () =
  let c = Patterns.ripple_carry_adder ~bits:4 in
  Alcotest.(check bool) "self-equivalent" true (Equiv.equivalent c c)

let test_equiv_de_morgan () =
  let base =
    Circuit.create ~name:"a"
      ~nodes:
        [ ("p", Gate.Input, []); ("q", Gate.Input, []);
          ("y", Gate.Nand, [ "p"; "q" ]) ]
      ~outputs:[ "y" ]
  in
  let rewritten =
    Circuit.create ~name:"b"
      ~nodes:
        [ ("p", Gate.Input, []); ("q", Gate.Input, []);
          ("np", Gate.Not, [ "p" ]); ("nq", Gate.Not, [ "q" ]);
          ("y", Gate.Or, [ "np"; "nq" ]) ]
      ~outputs:[ "y" ]
  in
  Alcotest.(check bool) "nand = or of nots" true
    (Equiv.equivalent base rewritten)

let test_equiv_detects_difference () =
  let a = wide_gate Gate.And 3 in
  let b = wide_gate Gate.Or 3 in
  match Equiv.check a b with
  | Equiv.Different { output_index; witness } ->
    Alcotest.(check int) "first output" 0 output_index;
    (* the witness must actually distinguish them *)
    let va = (Circuit.output_values a witness).(0) in
    let vb = (Circuit.output_values b witness).(0) in
    Alcotest.(check bool) "witness distinguishes" true (va <> vb)
  | _ -> Alcotest.fail "expected Different"

let test_equiv_interface_mismatch () =
  let a = wide_gate Gate.And 2 in
  let b = wide_gate Gate.And 3 in
  match Equiv.check a b with
  | Equiv.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected Inconclusive on interface mismatch"

let test_equiv_input_order_independent () =
  (* same function, inputs declared in a different order *)
  let a =
    Circuit.create ~name:"a"
      ~nodes:
        [ ("p", Gate.Input, []); ("q", Gate.Input, []);
          ("y", Gate.And, [ "p"; "q" ]) ]
      ~outputs:[ "y" ]
  in
  let b =
    Circuit.create ~name:"b"
      ~nodes:
        [ ("q", Gate.Input, []); ("p", Gate.Input, []);
          ("y", Gate.And, [ "q"; "p" ]) ]
      ~outputs:[ "y" ]
  in
  Alcotest.(check bool) "order independent" true (Equiv.equivalent a b)

let test_equiv_node_limit () =
  let c = Patterns.array_multiplier ~bits:5 in
  match Equiv.check ~node_limit:10 c c with
  | Equiv.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected blow-up report"

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)

let test_decompose_bounds_fanin () =
  List.iter
    (fun kind ->
      let c = wide_gate kind 7 in
      let d = Tech_map.decompose ~max_fanin:2 c in
      Alcotest.(check bool) "bounded" true (Tech_map.max_gate_fanin d <= 2);
      Alcotest.(check bool)
        (Gate.to_string kind ^ " equivalent")
        true (Equiv.equivalent c d))
    [ Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_decompose_noop_when_within_bound () =
  let c = Patterns.ripple_carry_adder ~bits:3 in
  let d = Tech_map.decompose ~max_fanin:4 c in
  Alcotest.(check int) "no new gates" (Circuit.gate_count c)
    (Circuit.gate_count d);
  Alcotest.(check bool) "equivalent" true (Equiv.equivalent c d)

let test_decompose_preserves_outputs () =
  let c = wide_gate Gate.Nand 6 in
  let d = Tech_map.decompose ~max_fanin:3 c in
  Alcotest.(check int) "one output" 1 (Array.length (Circuit.outputs d));
  Alcotest.(check string) "same output name" "y"
    (Circuit.node d (Circuit.outputs d).(0)).Circuit.name

let test_decompose_rejects_bad_bound () =
  match Tech_map.decompose ~max_fanin:1 (wide_gate Gate.And 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let decompose_equivalence_property =
  QCheck.Test.make
    ~name:"decomposition preserves the function of random circuits"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 2 4))
    (fun (seed, k) ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "tm";
               primary_inputs = 6;
               primary_outputs = 3;
               flip_flops = 2;
               gates = 40;
               logic_depth = 5;
               seed = Some (Int64.of_int seed);
             })
      in
      let d = Tech_map.decompose ~max_fanin:k c in
      Tech_map.max_gate_fanin d <= k && Equiv.equivalent c d)

let test_decompose_suite_circuit () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s298") in
  let d = Tech_map.decompose ~max_fanin:2 c in
  Alcotest.(check bool) "bounded at 2" true (Tech_map.max_gate_fanin d <= 2);
  Alcotest.(check bool) "still equivalent" true (Equiv.equivalent c d);
  Alcotest.(check bool) "more gates" true
    (Circuit.gate_count d > Circuit.gate_count c);
  (* the decomposed circuit must still optimize end to end *)
  let p = Dcopt_core.Flow.prepare d in
  match (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
    (Dcopt_core.Scenario.of_prepared p) with
  | Some sol ->
    Alcotest.(check bool) "optimizable" true (Dcopt_opt.Solution.feasible sol)
  | None -> Alcotest.fail "decomposed circuit should close timing"

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)

let test_prune_removes_dead_cone () =
  let c =
    Circuit.create ~name:"dead"
      ~nodes:
        [
          ("a", Gate.Input, []); ("b", Gate.Input, []);
          ("live", Gate.And, [ "a"; "b" ]);
          ("dead1", Gate.Or, [ "a"; "b" ]);
          ("dead2", Gate.Not, [ "dead1" ]);
        ]
      ~outputs:[ "live" ]
  in
  let p = Tech_map.prune c in
  Alcotest.(check int) "one gate left" 1 (Circuit.gate_count p);
  Alcotest.(check int) "inputs kept" 2 (Array.length (Circuit.inputs p));
  Alcotest.(check bool) "still equivalent" true (Equiv.equivalent c p)

let test_prune_keeps_dff_cones () =
  let c =
    Circuit.create ~name:"seqdead"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("ff", Gate.Dff, [ "g" ]);
          ("g", Gate.Not, [ "a" ]); (* feeds only the DFF: must survive *)
          ("out", Gate.Buf, [ "ff" ]);
        ]
      ~outputs:[ "out" ]
  in
  let p = Tech_map.prune c in
  Alcotest.(check int) "nothing removed" (Circuit.size c) (Circuit.size p)

let test_prune_idempotent_on_clean () =
  let c = Patterns.ripple_carry_adder ~bits:4 in
  let p = Tech_map.prune c in
  Alcotest.(check int) "same size" (Circuit.size c) (Circuit.size p)

let prune_equivalence_property =
  QCheck.Test.make ~name:"pruning preserves the visible function" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c =
        Circuit.combinational_core
          (Generator.generate
             {
               Generator.profile_name = "pr";
               primary_inputs = 5;
               primary_outputs = 3;
               flip_flops = 2;
               gates = 35;
               logic_depth = 5;
               seed = Some (Int64.of_int seed);
             })
      in
      let p = Tech_map.prune c in
      Circuit.gate_count p <= Circuit.gate_count c && Equiv.equivalent c p)

let () =
  Alcotest.run "techmap_equiv"
    [
      ( "equivalence",
        [
          Alcotest.test_case "self" `Quick test_equiv_self;
          Alcotest.test_case "de morgan" `Quick test_equiv_de_morgan;
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "interface mismatch" `Quick
            test_equiv_interface_mismatch;
          Alcotest.test_case "input order" `Quick
            test_equiv_input_order_independent;
          Alcotest.test_case "node limit" `Quick test_equiv_node_limit;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "bounds fanin" `Quick test_decompose_bounds_fanin;
          Alcotest.test_case "no-op within bound" `Quick
            test_decompose_noop_when_within_bound;
          Alcotest.test_case "preserves outputs" `Quick
            test_decompose_preserves_outputs;
          Alcotest.test_case "rejects bad bound" `Quick
            test_decompose_rejects_bad_bound;
          QCheck_alcotest.to_alcotest decompose_equivalence_property;
          Alcotest.test_case "suite circuit" `Slow test_decompose_suite_circuit;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "removes dead cone" `Quick
            test_prune_removes_dead_cone;
          Alcotest.test_case "keeps dff cones" `Quick test_prune_keeps_dff_cones;
          Alcotest.test_case "idempotent on clean" `Quick
            test_prune_idempotent_on_clean;
          QCheck_alcotest.to_alcotest prune_equivalence_property;
        ] );
    ]
