(* Tests for the post-paper extensions: short-circuit power, event-driven
   simulation, windowed activity, dual supplies, Monte-Carlo yield. *)

module Tech = Dcopt_device.Tech
module Short_circuit = Dcopt_device.Short_circuit
module Event_sim = Dcopt_sim.Event_sim
module Activity = Dcopt_activity.Activity
module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Patterns = Dcopt_netlist.Patterns
module Power_model = Dcopt_opt.Power_model
module Multi_vdd = Dcopt_opt.Multi_vdd
module Yield = Dcopt_opt.Yield
module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution

let tech = Tech.default

(* ------------------------------------------------------------------ *)
(* Short circuit                                                       *)

let test_sc_zero_without_overlap () =
  (* vdd <= 2 vt: both networks never conduct simultaneously *)
  Alcotest.(check (float 0.0)) "no overlap" 0.0
    (Short_circuit.energy tech ~vdd:0.5 ~vt:0.3 ~w:4.0 ~activity:0.5
       ~input_transition_time:1e-9)

let test_sc_positive_with_overlap () =
  let e =
    Short_circuit.energy tech ~vdd:3.3 ~vt:0.5 ~w:4.0 ~activity:0.5
      ~input_transition_time:1e-9
  in
  Alcotest.(check bool) "positive" true (e > 0.0)

let test_sc_linear_in_slope_and_activity () =
  let e tau a =
    Short_circuit.energy tech ~vdd:2.0 ~vt:0.3 ~w:4.0 ~activity:a
      ~input_transition_time:tau
  in
  Alcotest.(check (float 1e-25)) "linear in tau" (2.0 *. e 1e-10 0.2)
    (e 2e-10 0.2);
  Alcotest.(check (float 1e-25)) "linear in activity" (2.0 *. e 1e-10 0.2)
    (e 1e-10 0.4)

let test_sc_order_of_magnitude_below_switching () =
  (* the paper's justification for neglecting it: at typical slopes the
     crowbar term is an order of magnitude below switching energy *)
  let vdd = 3.3 and vt = 0.7 and w = 4.0 and a = 0.5 in
  let load = { Dcopt_device.Delay.no_load with Dcopt_device.Delay.cap_wire = 5e-15 } in
  let tau = 2.0 *. Dcopt_device.Delay.gate_delay tech ~vdd ~vt ~w load in
  let sc = Short_circuit.energy tech ~vdd ~vt ~w ~activity:a ~input_transition_time:tau in
  let sw = Dcopt_device.Energy.dynamic_energy tech ~vdd ~w ~activity:a ~load in
  Alcotest.(check bool) "sc below switching" true (sc < sw)

let test_sc_in_power_model () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27") in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.3 in
  let profile = Activity.local_profile core specs in
  let env_off = Power_model.make_env ~tech ~fc:300e6 core profile in
  let env_on =
    Power_model.make_env ~include_short_circuit:true ~tech ~fc:300e6 core
      profile
  in
  let design vdd = Power_model.uniform_design env_off ~vdd ~vt:0.2 ~w:4.0 in
  let off = Power_model.evaluate env_off (design 2.0) in
  let on = Power_model.evaluate env_on (design 2.0) in
  Alcotest.(check (float 0.0)) "disabled env has none" 0.0
    off.Power_model.short_circuit_energy;
  Alcotest.(check bool) "enabled env charges it" true
    (on.Power_model.short_circuit_energy > 0.0);
  Alcotest.(check (float 1e-25)) "total includes it"
    (on.Power_model.static_energy +. on.Power_model.dynamic_energy
    +. on.Power_model.short_circuit_energy)
    on.Power_model.total_energy

(* ------------------------------------------------------------------ *)
(* Event-driven simulation                                             *)

let unit_delays circuit =
  Array.init (Circuit.size circuit) (fun id ->
      match (Circuit.node circuit id).Circuit.kind with
      | Gate.Input -> 0.0
      | _ -> 1.0)

let test_event_sim_matches_eval () =
  let c = Patterns.ripple_carry_adder ~bits:4 in
  let delays = unit_delays c in
  let before = Array.make 9 false in
  let after = Array.init 9 (fun i -> i mod 2 = 0) in
  let r = Event_sim.settle c ~delays ~before ~after in
  let expected = Circuit.eval c after in
  Alcotest.(check (array bool)) "final values match evaluation" expected
    r.Event_sim.values

let test_event_sim_settle_bounded_by_sta () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s298") in
  let delays = unit_delays c in
  let sta = Dcopt_timing.Sta.analyze c ~delays in
  let rng = Dcopt_util.Prng.create 7L in
  let n_in = Array.length (Circuit.inputs c) in
  for _ = 1 to 25 do
    let before = Array.init n_in (fun _ -> Dcopt_util.Prng.bool rng) in
    let after = Array.init n_in (fun _ -> Dcopt_util.Prng.bool rng) in
    let r = Event_sim.settle c ~delays ~before ~after in
    Alcotest.(check bool) "settle <= critical" true
      (r.Event_sim.settle_time
      <= sta.Dcopt_timing.Sta.critical_delay +. 1e-9)
  done

let test_event_sim_no_change_no_events () =
  let c = Patterns.parity_tree ~leaves:4 in
  let v = [| true; false; true; true |] in
  let r = Event_sim.settle c ~delays:(unit_delays c) ~before:v ~after:v in
  Alcotest.(check int) "no events" 0 r.Event_sim.events_processed;
  Alcotest.(check (float 0.0)) "no settle" 0.0 r.Event_sim.settle_time

let test_event_sim_counts_glitches () =
  (* y = AND(a, NOT a): a 0->1 flip makes y pulse when the direct path is
     faster than the inverted one *)
  let c =
    Circuit.create ~name:"glitch"
      ~nodes:
        [ ("a", Gate.Input, []); ("n", Gate.Not, [ "a" ]);
          ("y", Gate.And, [ "a"; "n" ]) ]
      ~outputs:[ "y" ]
  in
  let delays = unit_delays c in
  let r = Event_sim.settle c ~delays ~before:[| false |] ~after:[| true |] in
  (* y rises at t=1 (from a) and falls at t=2 (from n): two transitions
     though the zero-delay value never changes *)
  Alcotest.(check int) "glitch pulse" 2
    r.Event_sim.transitions.(Circuit.find c "y");
  let zd = Event_sim.zero_delay_transitions c ~before:[| false |] ~after:[| true |] in
  Alcotest.(check int) "zero-delay sees nothing" 0 zd.(Circuit.find c "y")

let test_monte_carlo_activity_sane () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27") in
  let rng = Dcopt_util.Prng.create 11L in
  let est =
    Event_sim.monte_carlo_activity c ~rng ~vectors:800 ~input_probability:0.5
      ~input_density:0.3
  in
  (* input densities should land near the requested rate *)
  Array.iter
    (fun id ->
      let d = est.Event_sim.densities.(id) in
      Alcotest.(check bool) "input rate near 0.3" true (d > 0.2 && d < 0.4))
    (Circuit.inputs c);
  Alcotest.(check bool) "glitch fraction in [0,1)" true
    (est.Event_sim.glitch_fraction >= 0.0 && est.Event_sim.glitch_fraction < 1.0)

let test_monte_carlo_vs_najm_on_tree () =
  (* a balanced XOR tree does not glitch, but simultaneous input toggles
     cancel pairwise: the true per-cycle toggle rate of the root is
     Pr[odd number of input toggles] = (1 - (1 - 2d)^n) / 2, strictly below
     Najm's collision-blind n*d *)
  let c = Patterns.parity_tree ~leaves:4 in
  let rng = Dcopt_util.Prng.create 13L in
  let d = 0.2 in
  let est =
    Event_sim.monte_carlo_activity c ~rng ~vectors:6000
      ~input_probability:0.5 ~input_density:d
  in
  let specs = Activity.uniform_inputs c ~probability:0.5 ~density:d in
  let analytic = Activity.local_profile c specs in
  let out = (Circuit.outputs c).(0) in
  let measured = est.Event_sim.densities.(out) in
  let closed_form = (1.0 -. ((1.0 -. (2.0 *. d)) ** 4.0)) /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f vs closed form %.3f" measured closed_form)
    true
    (Float.abs (measured -. closed_form) < 0.05);
  Alcotest.(check bool) "najm over-counts colliding toggles" true
    (analytic.Activity.densities.(out) > measured);
  Alcotest.(check (float 1e-9)) "no hazards on a balanced tree" 0.0
    est.Event_sim.glitch_fraction

(* ------------------------------------------------------------------ *)
(* Windowed activity                                                   *)

let test_windowed_equals_local_at_window_one () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s298") in
  let specs = Activity.uniform_inputs c ~probability:0.5 ~density:0.2 in
  let local = Activity.local_profile c specs in
  let windowed = Activity.windowed_profile ~window:1 c specs in
  Array.iteri
    (fun id p ->
      Alcotest.(check (float 1e-9)) "probability" p
        windowed.Activity.probabilities.(id);
      Alcotest.(check (float 1e-9)) "density" local.Activity.densities.(id)
        windowed.Activity.densities.(id))
    local.Activity.probabilities

let test_windowed_equals_exact_at_large_window () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.s27 ()) in
  let specs = Activity.uniform_inputs c ~probability:0.4 ~density:0.3 in
  let windowed = Activity.windowed_profile ~window:100 c specs in
  match Activity.exact_profile c specs with
  | None -> Alcotest.fail "s27 fits"
  | Some exact ->
    Array.iteri
      (fun id p ->
        Alcotest.(check (float 1e-9)) "probability" p
          windowed.Activity.probabilities.(id);
        Alcotest.(check (float 1e-9)) "density"
          exact.Activity.densities.(id)
          windowed.Activity.densities.(id))
      exact.Activity.probabilities

let test_windowed_resolves_local_reconvergence () =
  let c =
    Circuit.create ~name:"reconv"
      ~nodes:
        [ ("a", Gate.Input, []); ("n", Gate.Not, [ "a" ]);
          ("y", Gate.And, [ "a"; "n" ]) ]
      ~outputs:[ "y" ]
  in
  let specs = Activity.uniform_inputs c ~probability:0.5 ~density:0.2 in
  let windowed = Activity.windowed_profile ~window:2 c specs in
  let y = Circuit.find c "y" in
  Alcotest.(check (float 1e-12)) "constant false detected" 0.0
    windowed.Activity.probabilities.(y)

(* ------------------------------------------------------------------ *)
(* Multi-vdd                                                           *)

let setup name =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn name) in
  let budgets = Option.get (Flow.repaired_budgets p ~vt:tech.Tech.vt_min) in
  (p.Flow.env, budgets)

let test_multivdd_classify_legal () =
  let env, budgets = setup "s298" in
  let a = Multi_vdd.classify env ~budgets ~slack_threshold:1.5 in
  let circuit = Power_model.circuit env in
  Array.iter
    (fun id ->
      if a.Multi_vdd.uses_low.(id) then
        Array.iter
          (fun g ->
            Alcotest.(check bool) "low never drives high" true
              a.Multi_vdd.uses_low.(g))
          (Circuit.fanouts circuit id))
    (Power_model.gate_ids env)

let test_multivdd_equal_rails_matches_single () =
  let env, budgets = setup "s27" in
  let a = Multi_vdd.classify env ~budgets ~slack_threshold:1.5 in
  match Multi_vdd.evaluate env a ~vdd_high:1.0 ~vdd_low:1.0 ~vt:0.2 ~budgets with
  | None -> Alcotest.fail "equal rails should size"
  | Some r ->
    Alcotest.(check bool) "feasible" true (Solution.feasible r.Multi_vdd.solution)

let test_multivdd_rejects_inverted_rails () =
  let env, budgets = setup "s27" in
  let a = Multi_vdd.classify env ~budgets ~slack_threshold:1.5 in
  match Multi_vdd.evaluate env a ~vdd_high:0.8 ~vdd_low:1.2 ~vt:0.2 ~budgets with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_multivdd_optimize_no_worse () =
  let env, budgets = setup "s298" in
  let single =
    Option.get
      (Dcopt_opt.Heuristic.optimize
         ~options:{ Dcopt_opt.Heuristic.default_options with
                    strategy = Dcopt_opt.Heuristic.Grid_refine }
         env ~budgets)
  in
  match Multi_vdd.optimize env ~budgets with
  | None -> Alcotest.fail "expected a result"
  | Some r ->
    Alcotest.(check bool) "no worse than single" true
      (Solution.total_energy r.Multi_vdd.solution
      <= Solution.total_energy single *. (1.0 +. 1e-9));
    Alcotest.(check bool) "rails ordered" true
      (r.Multi_vdd.vdd_low <= r.Multi_vdd.vdd_high)

let test_multivdd_helps_fixed_vt () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s298") in
  let budgets = Option.get (Flow.repaired_budgets p ~vt:0.7) in
  let env = p.Flow.env in
  let single = Option.get (Dcopt_opt.Baseline.optimize env ~budgets) in
  match Multi_vdd.optimize ~vt_fixed:0.7 env ~budgets with
  | None -> Alcotest.fail "expected a result"
  | Some r ->
    (* at the high conventional supply the second rail has headroom *)
    Alcotest.(check bool) "some gates on the low rail" true
      (r.Multi_vdd.supply_assignment.Multi_vdd.low_count > 0);
    Alcotest.(check bool) "saves energy" true
      (Solution.total_energy r.Multi_vdd.solution
      < Solution.total_energy single)

(* ------------------------------------------------------------------ *)
(* Yield                                                               *)

let test_yield_perfect_at_zero_sigma () =
  let env, budgets = setup "s27" in
  let design, ok = Power_model.size_all env ~vdd:3.3
      ~vt:(Array.make (Circuit.size (Power_model.circuit env)) 0.2) ~budgets in
  Alcotest.(check bool) "sized" true ok;
  let r = Yield.monte_carlo env design ~sigma_fraction:0.0 ~samples:50 in
  Alcotest.(check (float 0.0)) "yield 1" 1.0 r.Yield.timing_yield

let test_yield_monotone_in_sigma () =
  let env, budgets = setup "s298" in
  let sol =
    Option.get
      (Dcopt_opt.Heuristic.optimize
         ~options:{ Dcopt_opt.Heuristic.default_options with
                    strategy = Dcopt_opt.Heuristic.Grid_refine }
         env ~budgets)
  in
  let y s =
    (Yield.monte_carlo env sol.Solution.design ~sigma_fraction:s ~samples:150)
      .Yield.timing_yield
  in
  let y_low = y 0.05 and y_high = y 0.25 in
  Alcotest.(check bool)
    (Printf.sprintf "yield falls: %.2f -> %.2f" y_low y_high)
    true (y_high <= y_low)

let test_yield_deterministic () =
  let env, budgets = setup "s27" in
  let design, _ = Power_model.size_all env ~vdd:1.0
      ~vt:(Array.make (Circuit.size (Power_model.circuit env)) 0.15) ~budgets in
  let run () = Yield.monte_carlo env design ~sigma_fraction:0.1 ~samples:100 in
  Alcotest.(check bool) "same seed same report" true (run () = run ())

let test_yield_curve_shape () =
  let env, budgets = setup "s298" in
  let curve =
    Yield.yield_curve ~m_steps:8 ~samples:120 env ~budgets
      ~sigmas:[| 0.05; 0.20 |]
  in
  Alcotest.(check int) "both sigmas" 2 (Array.length curve);
  Array.iter
    (fun pt ->
      Alcotest.(check bool) "margined at least nominal" true
        (pt.Yield.margined_yield >= pt.Yield.nominal_yield -. 0.05);
      Alcotest.(check bool) "margin costs energy" true
        (pt.Yield.margined_energy_cost >= 1.0))
    curve

let () =
  Alcotest.run "extensions"
    [
      ( "short circuit",
        [
          Alcotest.test_case "no overlap" `Quick test_sc_zero_without_overlap;
          Alcotest.test_case "with overlap" `Quick test_sc_positive_with_overlap;
          Alcotest.test_case "linearities" `Quick
            test_sc_linear_in_slope_and_activity;
          Alcotest.test_case "below switching" `Quick
            test_sc_order_of_magnitude_below_switching;
          Alcotest.test_case "power model integration" `Quick
            test_sc_in_power_model;
        ] );
      ( "event sim",
        [
          Alcotest.test_case "matches eval" `Quick test_event_sim_matches_eval;
          Alcotest.test_case "settle bounded by sta" `Quick
            test_event_sim_settle_bounded_by_sta;
          Alcotest.test_case "quiescent" `Quick test_event_sim_no_change_no_events;
          Alcotest.test_case "glitch counting" `Quick
            test_event_sim_counts_glitches;
          Alcotest.test_case "monte carlo sanity" `Quick
            test_monte_carlo_activity_sane;
          Alcotest.test_case "monte carlo vs najm" `Quick
            test_monte_carlo_vs_najm_on_tree;
        ] );
      ( "windowed activity",
        [
          Alcotest.test_case "window 1 = local" `Quick
            test_windowed_equals_local_at_window_one;
          Alcotest.test_case "large window = exact" `Quick
            test_windowed_equals_exact_at_large_window;
          Alcotest.test_case "resolves reconvergence" `Quick
            test_windowed_resolves_local_reconvergence;
        ] );
      ( "multi-vdd",
        [
          Alcotest.test_case "legal assignment" `Quick test_multivdd_classify_legal;
          Alcotest.test_case "equal rails" `Quick
            test_multivdd_equal_rails_matches_single;
          Alcotest.test_case "inverted rails" `Quick
            test_multivdd_rejects_inverted_rails;
          Alcotest.test_case "no worse than single" `Slow
            test_multivdd_optimize_no_worse;
          Alcotest.test_case "helps fixed vt" `Slow test_multivdd_helps_fixed_vt;
        ] );
      ( "yield",
        [
          Alcotest.test_case "zero sigma" `Quick test_yield_perfect_at_zero_sigma;
          Alcotest.test_case "monotone in sigma" `Quick test_yield_monotone_in_sigma;
          Alcotest.test_case "deterministic" `Quick test_yield_deterministic;
          Alcotest.test_case "curve shape" `Slow test_yield_curve_shape;
        ] );
    ]
