module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Tech = Dcopt_device.Tech
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Power_model = Dcopt_opt.Power_model
module Heuristic = Dcopt_opt.Heuristic
module Baseline = Dcopt_opt.Baseline
module Annealing = Dcopt_opt.Annealing
module Multi_vt = Dcopt_opt.Multi_vt
module Solution = Dcopt_opt.Solution
module Budget_repair = Dcopt_opt.Budget_repair
module Variation = Dcopt_opt.Variation
module Slack_sweep = Dcopt_opt.Slack_sweep

let tech = Tech.default
let fc = 300e6

let setup ?(name = "s298") ?(density = 0.1) () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn name) in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc core profile in
  let raw = (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max in
  let budgets =
    match Budget_repair.repair env ~budgets:raw ~vdd:tech.Tech.vdd_max ~vt:tech.Tech.vt_min with
    | Budget_repair.Repaired { budgets; _ } -> budgets
    | Budget_repair.Infeasible _ -> raw
  in
  (core, env, budgets)

(* ------------------------------------------------------------------ *)
(* Power model                                                         *)

let test_env_rejects_sequential () =
  let seq = Dcopt_suite.Suite.s27 () in
  let core = Circuit.combinational_core seq in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  match Power_model.make_env ~tech ~fc seq profile with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_gate_ids_topological () =
  let _, env, _ = setup () in
  let core = Power_model.circuit env in
  let ids = Power_model.gate_ids env in
  let pos = Hashtbl.create 64 in
  Array.iteri (fun i id -> Hashtbl.add pos id i) ids;
  Array.iter
    (fun id ->
      let nd = Circuit.node core id in
      Array.iter
        (fun f ->
          match Hashtbl.find_opt pos f with
          | Some pf ->
            Alcotest.(check bool) "fanin first" true
              (pf < Hashtbl.find pos id)
          | None -> () (* primary input *))
        nd.Circuit.fanins)
    ids

let test_evaluate_energy_positive () =
  let _, env, _ = setup () in
  let design = Power_model.uniform_design env ~vdd:1.0 ~vt:0.2 ~w:4.0 in
  let e = Power_model.evaluate env design in
  Alcotest.(check bool) "static > 0" true (e.Power_model.static_energy > 0.0);
  Alcotest.(check bool) "dynamic > 0" true (e.Power_model.dynamic_energy > 0.0);
  Alcotest.(check (float 1e-30)) "total = sum"
    (e.Power_model.static_energy +. e.Power_model.dynamic_energy)
    e.Power_model.total_energy;
  Alcotest.(check (float 1e-9)) "power = energy * fc"
    (e.Power_model.total_energy *. fc)
    (e.Power_model.static_power +. e.Power_model.dynamic_power)

let test_evaluate_vdd_scaling () =
  let _, env, _ = setup () in
  let low = Power_model.evaluate env (Power_model.uniform_design env ~vdd:1.0 ~vt:0.3 ~w:4.0) in
  let high = Power_model.evaluate env (Power_model.uniform_design env ~vdd:2.0 ~vt:0.3 ~w:4.0) in
  Alcotest.(check (float 1e-6)) "dynamic quadratic in vdd" 4.0
    (high.Power_model.dynamic_energy /. low.Power_model.dynamic_energy);
  Alcotest.(check bool) "high vdd faster" true
    (high.Power_model.critical_delay < low.Power_model.critical_delay)

let test_size_gate_monotone_budget () =
  let _, env, budgets = setup () in
  let design = Power_model.uniform_design env ~vdd:2.0 ~vt:0.3 ~w:2.0 in
  let gates = Power_model.gate_ids env in
  let id = gates.(Array.length gates / 2) in
  match Power_model.size_gate env design ~budgets id with
  | None -> Alcotest.fail "expected feasible at 2 V"
  | Some w ->
    (* doubling the budget can only shrink the required width *)
    let looser = Array.map (fun b -> 2.0 *. b) budgets in
    (match Power_model.size_gate env design ~budgets:looser id with
    | None -> Alcotest.fail "looser budget must stay feasible"
    | Some w' -> Alcotest.(check bool) "narrower" true (w' <= w))

let test_size_all_meets_cycle () =
  let core, env, budgets = setup () in
  let n = Circuit.size core in
  let design, ok = Power_model.size_all env ~vdd:3.3 ~vt:(Array.make n 0.15) ~budgets in
  Alcotest.(check bool) "sizing feasible" true ok;
  let e = Power_model.evaluate env design in
  Alcotest.(check bool) "meets cycle" true e.Power_model.feasible

let sizing_implies_cycle_property =
  (* the core soundness invariant: per-gate budget satisfaction implies the
     whole circuit meets the cycle time *)
  QCheck.Test.make ~name:"budget-sized designs meet the cycle time" ~count:20
    QCheck.(pair (float_range 0.8 3.3) (float_range 0.1 0.3))
    (fun (vdd, vt) ->
      let core, env, budgets = setup ~name:"s27" () in
      let n = Circuit.size core in
      let design, ok = Power_model.size_all env ~vdd ~vt:(Array.make n vt) ~budgets in
      let e = Power_model.evaluate env design in
      (not ok) || e.Power_model.feasible)

(* ------------------------------------------------------------------ *)
(* Heuristic / baseline                                                *)

let test_heuristic_finds_feasible () =
  let _, env, budgets = setup () in
  match Heuristic.optimize env ~budgets with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check bool) "feasible" true (Solution.feasible sol);
    Alcotest.(check bool) "budgets met" true sol.Solution.meets_budgets;
    Alcotest.(check bool) "low vdd" true (Solution.vdd sol < 2.0)

let test_heuristic_beats_naive () =
  let _, env, budgets = setup () in
  let naive = Heuristic.sizing_solution env ~budgets ~vdd:3.3 ~vt:0.7 in
  match Heuristic.optimize env ~budgets with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check bool) "order of magnitude" true
      (Solution.total_energy naive /. Solution.total_energy sol > 5.0)

let test_grid_refine_at_least_as_good () =
  let _, env, budgets = setup () in
  let binary = Heuristic.optimize env ~budgets in
  let grid =
    Heuristic.optimize
      ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
      env ~budgets
  in
  match (binary, grid) with
  | Some b, Some g ->
    (* the binary heuristic should land within 2x of the grid reference *)
    Alcotest.(check bool) "binary close to grid" true
      (Solution.total_energy b /. Solution.total_energy g < 2.0)
  | _ -> Alcotest.fail "both should find solutions"

let test_baseline_pinned_vt () =
  let _, env, budgets = setup () in
  match Baseline.optimize env ~budgets with
  | None -> Alcotest.fail "baseline should be feasible on s298"
  | Some sol ->
    Alcotest.(check (list (float 1e-9))) "single vt at 0.7" [ 0.7 ]
      (Solution.vt_values sol);
    Alcotest.(check bool) "high vdd" true (Solution.vdd sol > 2.0);
    Alcotest.(check bool) "leakage negligible" true
      (Solution.static_energy sol < 0.001 *. Solution.dynamic_energy sol)

let test_paper_signatures () =
  (* the four qualitative signatures of the paper's Table 2 *)
  let _, env, budgets = setup () in
  let baseline = Option.get (Baseline.optimize env ~budgets) in
  let joint =
    Option.get
      (Heuristic.optimize
         ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
         env ~budgets)
  in
  let savings = Solution.savings ~baseline joint in
  Alcotest.(check bool) "savings order of magnitude" true (savings > 6.0);
  Alcotest.(check bool) "joint vdd in the paper's band" true
    (Solution.vdd joint >= 0.4 && Solution.vdd joint <= 1.3);
  let vt = List.hd (Solution.vt_values joint) in
  Alcotest.(check bool) "joint vt in the paper's band" true
    (vt >= 0.1 && vt <= 0.26);
  let ratio = Solution.static_energy joint /. Solution.dynamic_energy joint in
  Alcotest.(check bool) "static comparable to dynamic" true
    (ratio > 0.1 && ratio < 10.0)

let test_savings_grow_with_activity () =
  let run density =
    let _, env, budgets = setup ~density () in
    let baseline = Option.get (Baseline.optimize env ~budgets) in
    let joint =
      Option.get
        (Heuristic.optimize
           ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
           env ~budgets)
    in
    Solution.savings ~baseline joint
  in
  Alcotest.(check bool) "higher activity, higher savings" true
    (run 0.5 > run 0.1)

(* ------------------------------------------------------------------ *)
(* TILOS                                                               *)

let test_tilos_sizing_meets_cycle () =
  let _, env, _ = setup ~name:"s27" () in
  match Dcopt_opt.Tilos.size_for_cycle env ~vdd:1.2 ~vt:0.2 with
  | None -> Alcotest.fail "1.2 V should be sizable"
  | Some design ->
    let e = Power_model.evaluate env design in
    Alcotest.(check bool) "meets cycle" true e.Power_model.feasible

let test_tilos_detects_unreachable () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s27") in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc:50e9 core profile in
  Alcotest.(check bool) "50 GHz unreachable" true
    (Dcopt_opt.Tilos.size_for_cycle env ~vdd:3.3 ~vt:0.1 = None)

let test_tilos_beats_budgeted_sizing () =
  let _, env, budgets = setup ~name:"s27" () in
  let proc2 =
    Option.get
      (Heuristic.optimize
         ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
         env ~budgets)
  in
  match Dcopt_opt.Tilos.optimize ~m_steps:6 env with
  | None -> Alcotest.fail "tilos should find a design"
  | Some sol ->
    Alcotest.(check bool) "feasible" true (Solution.feasible sol);
    (* budget-free sizing is never worse than the decomposed heuristic *)
    Alcotest.(check bool) "no worse than procedure 2" true
      (Solution.total_energy sol
      <= Solution.total_energy proc2 *. (1.0 +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Annealing / multi-vt                                                *)

let test_annealing_feasible_not_better () =
  let _, env, budgets = setup ~name:"s27" () in
  let grid =
    Option.get
      (Heuristic.optimize
         ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
         env ~budgets)
  in
  let options = { Annealing.default_options with Annealing.passes = 2; moves_per_pass = 1500 } in
  match Annealing.optimize ~options env ~budgets with
  | None -> Alcotest.fail "annealing should find something feasible"
  | Some sol ->
    Alcotest.(check bool) "feasible" true (Solution.feasible sol);
    (* the paper: annealing does not beat the heuristic in practical time *)
    Alcotest.(check bool) "not dramatically better than the heuristic" true
      (Solution.total_energy sol > 0.5 *. Solution.total_energy grid)

let test_annealing_deterministic () =
  let _, env, budgets = setup ~name:"s27" () in
  let options = { Annealing.default_options with Annealing.passes = 1; moves_per_pass = 500 } in
  let run () =
    Annealing.optimize ~options env ~budgets
    |> Option.map Solution.total_energy
  in
  Alcotest.(check bool) "same seed, same answer" true (run () = run ())

let test_multi_vt_no_worse () =
  let _, env, budgets = setup ~name:"s386" () in
  let single =
    Option.get
      (Heuristic.optimize
         ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
         env ~budgets)
  in
  match Multi_vt.optimize ~n_vt:2 env ~budgets with
  | None -> Alcotest.fail "expected a dual-vt solution"
  | Some dual ->
    Alcotest.(check bool) "dual-vt no worse" true
      (Solution.total_energy dual
      <= Solution.total_energy single *. (1.0 +. 1e-9));
    Alcotest.(check bool) "at most two thresholds" true
      (List.length (Solution.vt_values dual) <= 2)

let test_greedy_dual_vt_improves () =
  let _, env, budgets = setup () in
  let single =
    Option.get
      (Heuristic.optimize
         ~options:{ Heuristic.default_options with strategy = Heuristic.Grid_refine }
         env ~budgets)
  in
  let dual = Multi_vt.greedy_dual_vt env single in
  Alcotest.(check bool) "feasible" true (Solution.feasible dual);
  Alcotest.(check bool) "no worse" true
    (Solution.total_energy dual <= Solution.total_energy single *. (1.0 +. 1e-9));
  (* on s298 the slack structure leaves real leakage on the table *)
  Alcotest.(check bool) "actually improves" true
    (Solution.total_energy dual < Solution.total_energy single *. 0.95);
  Alcotest.(check int) "two thresholds" 2
    (List.length (Solution.vt_values dual))

let test_multi_vt_classify () =
  let _, env, budgets = setup () in
  let classes = Multi_vt.classify env ~budgets ~classes:3 in
  let counts = Array.make 3 0 in
  Array.iter
    (fun id -> counts.(classes.(id)) <- counts.(classes.(id)) + 1)
    (Power_model.gate_ids env);
  Array.iter
    (fun c -> Alcotest.(check bool) "non-empty classes" true (c > 0))
    counts

(* ------------------------------------------------------------------ *)
(* Budget repair                                                       *)

let test_repair_noop_when_feasible () =
  let core, env, _ = setup () in
  let raw = (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max in
  match Budget_repair.repair env ~budgets:raw ~vdd:3.3 ~vt:0.1 with
  | Budget_repair.Repaired { budgets; _ } ->
    let n = Circuit.size core in
    let _, ok = Power_model.size_all env ~vdd:3.3 ~vt:(Array.make n 0.1) ~budgets in
    Alcotest.(check bool) "sizable after repair" true ok
  | Budget_repair.Infeasible _ -> Alcotest.fail "s298 is repairable"

let test_repair_preserves_cycle () =
  let core, env, _ = setup ~name:"s344" () in
  let raw = (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max in
  match Budget_repair.repair env ~budgets:raw ~vdd:3.3 ~vt:0.7 with
  | Budget_repair.Repaired { budgets; lifted; _ } ->
    Alcotest.(check bool) "some gates lifted" true (lifted >= 0);
    let sta = Dcopt_timing.Sta.analyze core ~delays:budgets in
    let before = Dcopt_timing.Sta.analyze core ~delays:raw in
    Alcotest.(check bool) "critical preserved" true
      (sta.Dcopt_timing.Sta.critical_delay
      <= before.Dcopt_timing.Sta.critical_delay *. (1.0 +. 1e-6))
  | Budget_repair.Infeasible _ -> Alcotest.fail "s344 repairable at 0.7"

let test_repair_idempotent () =
  let core, env, _ = setup ~name:"s344" () in
  let raw = (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max in
  match Budget_repair.repair env ~budgets:raw ~vdd:3.3 ~vt:0.7 with
  | Budget_repair.Infeasible _ -> Alcotest.fail "s344 repairable"
  | Budget_repair.Repaired { budgets; _ } -> (
    match Budget_repair.repair env ~budgets ~vdd:3.3 ~vt:0.7 with
    | Budget_repair.Infeasible _ -> Alcotest.fail "repaired budgets stay feasible"
    | Budget_repair.Repaired { budgets = again; lifted; iterations } ->
      Alcotest.(check int) "no further lifts" 0 lifted;
      Alcotest.(check int) "one settling pass" 1 iterations;
      Alcotest.(check bool) "fixpoint" true (again = budgets))

let test_repair_detects_impossible () =
  (* at 30 GHz nothing can close timing *)
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn "s298") in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc:30e9 core profile in
  let raw = (Delay_assign.assign core ~cycle_time:(1.0 /. 30e9)).Delay_assign.t_max in
  match Budget_repair.repair env ~budgets:raw ~vdd:3.3 ~vt:0.1 with
  | Budget_repair.Infeasible _ -> ()
  | Budget_repair.Repaired _ -> Alcotest.fail "30 GHz cannot be feasible"

(* ------------------------------------------------------------------ *)
(* Variation and slack sweeps                                          *)

let test_variation_savings_decrease () =
  let _, env, budgets = setup () in
  let baseline = Option.get (Baseline.optimize env ~budgets) in
  let points =
    Variation.savings_curve ~m_steps:8 env ~budgets
      ~baseline_energy:(Solution.total_energy baseline)
      ~tolerances:[| 0.0; 0.15; 0.30 |]
  in
  Alcotest.(check int) "all tolerances solved" 3 (Array.length points);
  Alcotest.(check bool) "monotone decreasing savings" true
    (points.(0).Variation.savings > points.(1).Variation.savings
    && points.(1).Variation.savings > points.(2).Variation.savings)

let test_slack_savings_increase () =
  let core, _, _ = setup () in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let points =
    Slack_sweep.sweep ~m_steps:8 ~tech ~fc core profile
      ~factors:[| 1.0; 3.0 |]
  in
  Alcotest.(check int) "both factors solved" 2 (Array.length points);
  Alcotest.(check bool) "more slack, more savings" true
    (points.(1).Slack_sweep.savings > points.(0).Slack_sweep.savings);
  Alcotest.(check bool) "joint vdd falls with slack" true
    (points.(1).Slack_sweep.joint_vdd < points.(0).Slack_sweep.joint_vdd)

let () =
  Alcotest.run "opt"
    [
      ( "power model",
        [
          Alcotest.test_case "rejects sequential" `Quick
            test_env_rejects_sequential;
          Alcotest.test_case "gate ids topological" `Quick
            test_gate_ids_topological;
          Alcotest.test_case "evaluate positive" `Quick
            test_evaluate_energy_positive;
          Alcotest.test_case "vdd scaling" `Quick test_evaluate_vdd_scaling;
          Alcotest.test_case "size gate monotone" `Quick
            test_size_gate_monotone_budget;
          Alcotest.test_case "size all meets cycle" `Quick
            test_size_all_meets_cycle;
          QCheck_alcotest.to_alcotest sizing_implies_cycle_property;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "heuristic feasible" `Quick
            test_heuristic_finds_feasible;
          Alcotest.test_case "heuristic beats naive" `Quick
            test_heuristic_beats_naive;
          Alcotest.test_case "binary close to grid" `Quick
            test_grid_refine_at_least_as_good;
          Alcotest.test_case "baseline pinned vt" `Quick test_baseline_pinned_vt;
          Alcotest.test_case "paper signatures" `Quick test_paper_signatures;
          Alcotest.test_case "savings vs activity" `Quick
            test_savings_grow_with_activity;
        ] );
      ( "tilos",
        [
          Alcotest.test_case "meets cycle" `Quick test_tilos_sizing_meets_cycle;
          Alcotest.test_case "unreachable" `Quick test_tilos_detects_unreachable;
          Alcotest.test_case "beats budgeted sizing" `Slow
            test_tilos_beats_budgeted_sizing;
        ] );
      ( "annealing and multi-vt",
        [
          Alcotest.test_case "annealing" `Slow test_annealing_feasible_not_better;
          Alcotest.test_case "annealing deterministic" `Quick
            test_annealing_deterministic;
          Alcotest.test_case "dual-vt no worse" `Slow test_multi_vt_no_worse;
          Alcotest.test_case "greedy dual-vt improves" `Quick
            test_greedy_dual_vt_improves;
          Alcotest.test_case "classify" `Quick test_multi_vt_classify;
        ] );
      ( "budget repair",
        [
          Alcotest.test_case "noop when feasible" `Quick
            test_repair_noop_when_feasible;
          Alcotest.test_case "preserves cycle" `Quick test_repair_preserves_cycle;
          Alcotest.test_case "idempotent" `Quick test_repair_idempotent;
          Alcotest.test_case "detects impossible" `Quick
            test_repair_detects_impossible;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "variation decreasing" `Slow
            test_variation_savings_decrease;
          Alcotest.test_case "slack increasing" `Slow test_slack_savings_increase;
        ] );
    ]
