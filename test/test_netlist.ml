module Gate = Dcopt_netlist.Gate
module Circuit = Dcopt_netlist.Circuit
module Bench_format = Dcopt_netlist.Bench_format
module Generator = Dcopt_netlist.Generator
module Patterns = Dcopt_netlist.Patterns
module Stats = Dcopt_netlist.Circuit_stats

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)

let test_gate_eval_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "and" true (Gate.eval Gate.And [| t; t |]);
  Alcotest.(check bool) "and f" false (Gate.eval Gate.And [| t; f |]);
  Alcotest.(check bool) "nand" false (Gate.eval Gate.Nand [| t; t |]);
  Alcotest.(check bool) "or" true (Gate.eval Gate.Or [| f; t |]);
  Alcotest.(check bool) "nor" true (Gate.eval Gate.Nor [| f; f |]);
  Alcotest.(check bool) "not" true (Gate.eval Gate.Not [| f |]);
  Alcotest.(check bool) "buf" false (Gate.eval Gate.Buf [| f |]);
  Alcotest.(check bool) "xor odd" true (Gate.eval Gate.Xor [| t; f; f |]);
  Alcotest.(check bool) "xor even" false (Gate.eval Gate.Xor [| t; t |]);
  Alcotest.(check bool) "xnor" true (Gate.eval Gate.Xnor [| t; t |])

let test_gate_eval_rejects_input () =
  Alcotest.check_raises "input" (Invalid_argument "Gate.eval: not a combinational gate")
    (fun () -> ignore (Gate.eval Gate.Input [||]))

let test_gate_strings_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> Alcotest.(check bool) (Gate.to_string k) true (k = k')
      | None -> Alcotest.fail "of_string failed")
    Gate.all

let test_gate_of_string_aliases () =
  Alcotest.(check bool) "INV" true (Gate.of_string "inv" = Some Gate.Not);
  Alcotest.(check bool) "BUFF" true (Gate.of_string "BUFF" = Some Gate.Buf);
  Alcotest.(check bool) "garbage" true (Gate.of_string "FOO" = None)

let test_gate_arity () =
  Alcotest.(check bool) "input 0" true (Gate.arity_ok Gate.Input 0);
  Alcotest.(check bool) "input 1" false (Gate.arity_ok Gate.Input 1);
  Alcotest.(check bool) "not 1" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "not 2" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "and 1" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "and 4" true (Gate.arity_ok Gate.And 4)

let test_gate_stack_depth () =
  Alcotest.(check int) "nand3" 3 (Gate.series_stack_depth Gate.Nand 3);
  Alcotest.(check int) "not" 1 (Gate.series_stack_depth Gate.Not 1);
  Alcotest.(check int) "xor" 2 (Gate.series_stack_depth Gate.Xor 2)

(* ------------------------------------------------------------------ *)
(* Circuit construction and validation                                 *)

let tiny () =
  Circuit.create ~name:"tiny"
    ~nodes:
      [
        ("a", Gate.Input, []); ("b", Gate.Input, []);
        ("n1", Gate.Nand, [ "a"; "b" ]); ("o", Gate.Not, [ "n1" ]);
      ]
    ~outputs:[ "o" ]

let test_create_ok () =
  let c = tiny () in
  Alcotest.(check int) "size" 4 (Circuit.size c);
  Alcotest.(check int) "gates" 2 (Circuit.gate_count c);
  Alcotest.(check int) "inputs" 2 (Array.length (Circuit.inputs c));
  Alcotest.(check int) "outputs" 1 (Array.length (Circuit.outputs c));
  Alcotest.(check bool) "comb" true (Circuit.is_combinational c)

let expect_invalid f =
  match f () with
  | exception Circuit.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Circuit.Invalid"

let test_create_duplicate_name () =
  expect_invalid (fun () ->
      Circuit.create ~name:"dup"
        ~nodes:[ ("a", Gate.Input, []); ("a", Gate.Input, []) ]
        ~outputs:[ "a" ])

let test_create_undefined_fanin () =
  expect_invalid (fun () ->
      Circuit.create ~name:"undef"
        ~nodes:[ ("a", Gate.Input, []); ("g", Gate.Not, [ "zzz" ]) ]
        ~outputs:[ "g" ])

let test_create_bad_arity () =
  expect_invalid (fun () ->
      Circuit.create ~name:"arity"
        ~nodes:[ ("a", Gate.Input, []); ("g", Gate.And, [ "a" ]) ]
        ~outputs:[ "g" ])

let test_create_combinational_cycle () =
  expect_invalid (fun () ->
      Circuit.create ~name:"cycle"
        ~nodes:
          [
            ("a", Gate.Input, []);
            ("g1", Gate.And, [ "a"; "g2" ]);
            ("g2", Gate.Not, [ "g1" ]);
          ]
        ~outputs:[ "g2" ])

let test_registered_feedback_allowed () =
  let c =
    Circuit.create ~name:"feedback"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("ff", Gate.Dff, [ "g" ]);
          ("g", Gate.And, [ "a"; "ff" ]);
        ]
      ~outputs:[ "g" ]
  in
  Alcotest.(check int) "dffs" 1 (Array.length (Circuit.dffs c));
  Alcotest.(check bool) "sequential" false (Circuit.is_combinational c)

let test_topo_order_respects_fanins () =
  let c = tiny () in
  let order = Circuit.topo_order c in
  let position = Array.make (Circuit.size c) 0 in
  Array.iteri (fun i id -> position.(id) <- i) order;
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Dff -> ()
      | _ ->
        Array.iter
          (fun f ->
            Alcotest.(check bool) "fanin before gate" true
              (position.(f) < position.(nd.Circuit.id)))
          nd.Circuit.fanins)
    (Circuit.nodes c)

let test_levels_and_depth () =
  let c = tiny () in
  Alcotest.(check int) "depth" 2 (Circuit.depth c);
  Alcotest.(check int) "input level" 0 (Circuit.level c (Circuit.find c "a"));
  Alcotest.(check int) "nand level" 1 (Circuit.level c (Circuit.find c "n1"));
  Alcotest.(check int) "not level" 2 (Circuit.level c (Circuit.find c "o"))

let test_fanouts () =
  let c = tiny () in
  let a = Circuit.find c "a" in
  Alcotest.(check int) "a fanout" 1 (Array.length (Circuit.fanouts c a));
  let o = Circuit.find c "o" in
  Alcotest.(check int) "o fanout_count counts pin" 1 (Circuit.fanout_count c o)

let test_combinational_core () =
  let seq =
    Circuit.create ~name:"seq"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("ff", Gate.Dff, [ "g" ]);
          ("g", Gate.Nor, [ "a"; "ff" ]);
        ]
      ~outputs:[ "g" ]
  in
  let core = Circuit.combinational_core seq in
  Alcotest.(check bool) "core comb" true (Circuit.is_combinational core);
  Alcotest.(check int) "core inputs = PI + DFF" 2
    (Array.length (Circuit.inputs core));
  (* the DFF data net becomes a pseudo primary output *)
  Alcotest.(check int) "core outputs" 2 (Array.length (Circuit.outputs core));
  Alcotest.(check int) "gate count preserved" (Circuit.gate_count seq)
    (Circuit.gate_count core)

let test_core_idempotent_on_combinational () =
  let c = tiny () in
  Alcotest.(check bool) "same value" true (Circuit.combinational_core c == c)

let test_eval_tiny () =
  let c = tiny () in
  let values = Circuit.eval c [| true; true |] in
  Alcotest.(check bool) "nand(1,1)=0" false values.(Circuit.find c "n1");
  Alcotest.(check bool) "not(0)=1" true values.(Circuit.find c "o");
  Alcotest.(check (array bool)) "outputs" [| true |]
    (Circuit.output_values c [| true; true |])

(* ------------------------------------------------------------------ *)
(* Patterns: functional correctness                                    *)

let adder_value c a b cin bits =
  (* drive the adder and read the sum as an integer *)
  let inputs = Circuit.inputs c in
  let input_values =
    Array.map
      (fun id ->
        let name = (Circuit.node c id).Circuit.name in
        if name = "cin" then cin
        else
          let bit = int_of_string (String.sub name 1 (String.length name - 1)) in
          if name.[0] = 'a' then (a lsr bit) land 1 = 1
          else (b lsr bit) land 1 = 1)
      inputs
  in
  let out = Circuit.output_values c input_values in
  let sum = ref 0 in
  for i = 0 to bits - 1 do
    if out.(i) then sum := !sum lor (1 lsl i)
  done;
  if out.(bits) then sum := !sum lor (1 lsl bits);
  !sum

let adder_property =
  QCheck.Test.make ~name:"ripple-carry adder adds" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let c = Patterns.ripple_carry_adder ~bits:8 in
      adder_value c a b cin 8 = a + b + if cin then 1 else 0)

let parity_property =
  QCheck.Test.make ~name:"parity tree computes parity" ~count:200
    QCheck.(list_of_size (Gen.return 9) bool)
    (fun bits ->
      let c = Patterns.parity_tree ~leaves:9 in
      let expected = List.fold_left (fun acc b -> if b then not acc else acc) false bits in
      (Circuit.output_values c (Array.of_list bits)).(0) = expected)

let mux_property =
  QCheck.Test.make ~name:"mux tree selects" ~count:200
    QCheck.(pair (list_of_size (Gen.return 8) bool) (int_bound 7))
    (fun (data, sel) ->
      let c = Patterns.mux_tree ~select_bits:3 in
      (* inputs order: d0..d7 then s0..s2 *)
      let input_values =
        Array.of_list
          (data @ List.init 3 (fun b -> (sel lsr b) land 1 = 1))
      in
      (Circuit.output_values c input_values).(0) = List.nth data sel)

let decoder_property =
  QCheck.Test.make ~name:"decoder is one-hot" ~count:100
    QCheck.(int_bound 7)
    (fun code ->
      let c = Patterns.decoder ~bits:3 in
      let input_values = Array.init 3 (fun b -> (code lsr b) land 1 = 1) in
      let out = Circuit.output_values c input_values in
      Array.length out = 8
      && Array.to_list out
         |> List.mapi (fun i v -> v = (i = code))
         |> List.for_all Fun.id)

let multiplier_property =
  QCheck.Test.make ~name:"array multiplier multiplies" ~count:200
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (a, b) ->
      let c = Patterns.array_multiplier ~bits:5 in
      let input_values =
        Array.map
          (fun id ->
            let name = (Circuit.node c id).Circuit.name in
            let bit = int_of_string (String.sub name 1 (String.length name - 1)) in
            if name.[0] = 'a' then (a lsr bit) land 1 = 1
            else (b lsr bit) land 1 = 1)
          (Circuit.inputs c)
      in
      let out = Circuit.output_values c input_values in
      let p = ref 0 in
      Array.iteri (fun i v -> if v then p := !p lor (1 lsl i)) out;
      !p = a * b)

let barrel_shifter_property =
  QCheck.Test.make ~name:"barrel shifter shifts with zero fill" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 7))
    (fun (d, sh) ->
      let c = Patterns.barrel_shifter ~bits:3 in
      let input_values =
        Array.map
          (fun id ->
            let name = (Circuit.node c id).Circuit.name in
            let bit = int_of_string (String.sub name 1 (String.length name - 1)) in
            if name.[0] = 'd' then (d lsr bit) land 1 = 1
            else (sh lsr bit) land 1 = 1)
          (Circuit.inputs c)
      in
      let out = Circuit.output_values c input_values in
      let y = ref 0 in
      Array.iteri (fun i v -> if v then y := !y lor (1 lsl i)) out;
      !y = (d lsl sh) land 255)

let test_multiplier_1bit_top_is_zero () =
  let c = Patterns.array_multiplier ~bits:1 in
  List.iter
    (fun (a, b) ->
      let out = Circuit.output_values c [| a; b |] in
      Alcotest.(check bool) "p0" (a && b) out.(0);
      Alcotest.(check bool) "p1 constant zero" false out.(1))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_inverter_chain () =
  let c = Patterns.inverter_chain ~stages:5 in
  Alcotest.(check int) "depth" 5 (Circuit.depth c);
  Alcotest.(check (array bool)) "odd inversions" [| true |]
    (Circuit.output_values c [| false |])

let test_and_or_ladder () =
  let c = Patterns.and_or_ladder ~rungs:7 in
  Alcotest.(check int) "depth" 7 (Circuit.depth c);
  Alcotest.(check int) "gates" 7 (Circuit.gate_count c)

(* ------------------------------------------------------------------ *)
(* Bench format                                                        *)

let test_parse_simple () =
  let text =
    "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)  # trailing\n"
  in
  let c = Bench_format.parse_string ~name:"x" text in
  Alcotest.(check int) "gates" 1 (Circuit.gate_count c);
  Alcotest.(check bool) "kind" true
    ((Circuit.node c (Circuit.find c "y")).Circuit.kind = Gate.Nand)

let test_parse_crlf_and_case () =
  (* Windows line endings and mixed-case keywords both parse *)
  let text = "INPUT(a)\r\ninput(b)\r\nOUTPUT(y)\r\ny = nand(a, b)\r\n" in
  let c = Bench_format.parse_string ~name:"crlf" text in
  Alcotest.(check int) "two inputs" 2 (Array.length (Circuit.inputs c));
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c)

let test_generator_depth_one () =
  let c =
    Generator.generate
      {
        Generator.profile_name = "flat";
        primary_inputs = 4;
        primary_outputs = 2;
        flip_flops = 0;
        gates = 6;
        logic_depth = 1;
        seed = Some 5L;
      }
  in
  Alcotest.(check int) "depth 1" 1 (Circuit.depth c);
  Alcotest.(check int) "six gates" 6 (Circuit.gate_count c)

let test_parse_errors () =
  let bad line text =
    match Bench_format.parse_string ~name:"bad" text with
    | exception Bench_format.Parse_error { line = l; _ } ->
      Alcotest.(check int) "line" line l
    | _ -> Alcotest.fail "expected parse error"
  in
  bad 1 "garbage here";
  bad 2 "INPUT(a)\ny = FROB(a, a)\n";
  bad 1 "INPUT(a, b)\n";
  bad 2 "INPUT(a)\n= NAND(a, a)\n"

let roundtrip_property =
  let profile_gen =
    QCheck.Gen.(
      map2
        (fun gates seed ->
          {
            Generator.profile_name = "rt";
            primary_inputs = 4;
            primary_outputs = 3;
            flip_flops = 2;
            gates = 20 + gates;
            logic_depth = 5;
            seed = Some (Int64.of_int seed);
          })
        (int_bound 60) (int_bound 10_000))
  in
  QCheck.Test.make ~name:"bench round-trip preserves structure" ~count:50
    (QCheck.make profile_gen)
    (fun profile ->
      let c = Generator.generate profile in
      let c' = Bench_format.parse_string ~name:"rt" (Bench_format.to_string c) in
      let s = Stats.compute c and s' = Stats.compute c' in
      s.Stats.gates = s'.Stats.gates
      && s.Stats.depth = s'.Stats.depth
      && s.Stats.primary_inputs = s'.Stats.primary_inputs
      && s.Stats.primary_outputs = s'.Stats.primary_outputs
      && s.Stats.flip_flops = s'.Stats.flip_flops
      && s.Stats.total_fanout = s'.Stats.total_fanout)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let generator_profile_property =
  let profile_gen =
    QCheck.Gen.(
      map
        (fun (pi, po, ff, extra_gates, depth, seed) ->
          {
            Generator.profile_name = "gen";
            primary_inputs = 1 + pi;
            primary_outputs = 1 + po;
            flip_flops = ff;
            gates = depth + 1 + extra_gates;
            logic_depth = 1 + depth;
            seed = Some (Int64.of_int seed);
          })
        (tup6 (int_bound 8) (int_bound 8) (int_bound 10) (int_bound 150)
           (int_bound 11) (int_bound 100_000)))
  in
  QCheck.Test.make ~name:"generator matches profile exactly" ~count:100
    (QCheck.make profile_gen)
    (fun p ->
      (* gates >= logic_depth required: gates = depth+1+extra > depth+1 ok *)
      let c = Generator.generate p in
      let s = Stats.compute c in
      s.Stats.primary_inputs = p.Generator.primary_inputs
      && s.Stats.primary_outputs = p.Generator.primary_outputs
      && s.Stats.flip_flops = p.Generator.flip_flops
      && s.Stats.gates = p.Generator.gates
      && s.Stats.depth = p.Generator.logic_depth)

let test_generator_deterministic () =
  let p =
    {
      Generator.profile_name = "det";
      primary_inputs = 3;
      primary_outputs = 2;
      flip_flops = 4;
      gates = 50;
      logic_depth = 6;
      seed = None;
    }
  in
  let a = Bench_format.to_string (Generator.generate p) in
  let b = Bench_format.to_string (Generator.generate p) in
  Alcotest.(check string) "same netlist" a b

let test_generator_validate () =
  let p =
    {
      Generator.profile_name = "bad";
      primary_inputs = 0;
      primary_outputs = 1;
      flip_flops = 0;
      gates = 5;
      logic_depth = 2;
      seed = None;
    }
  in
  Alcotest.(check bool) "rejects 0 inputs" true
    (Result.is_error (Generator.validate p))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_tiny () =
  let s = Stats.compute (tiny ()) in
  Alcotest.(check int) "gates" 2 s.Stats.gates;
  Alcotest.(check int) "depth" 2 s.Stats.depth;
  Alcotest.(check (float 1e-9)) "mean fanin" 1.5 s.Stats.mean_fanin;
  Alcotest.(check bool) "string mentions name" true
    (String.length (Stats.to_string s) > 0)

let () =
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_eval_truth_tables;
          Alcotest.test_case "eval rejects input" `Quick
            test_gate_eval_rejects_input;
          Alcotest.test_case "string round-trip" `Quick
            test_gate_strings_roundtrip;
          Alcotest.test_case "aliases" `Quick test_gate_of_string_aliases;
          Alcotest.test_case "arity" `Quick test_gate_arity;
          Alcotest.test_case "stack depth" `Quick test_gate_stack_depth;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "create ok" `Quick test_create_ok;
          Alcotest.test_case "duplicate name" `Quick test_create_duplicate_name;
          Alcotest.test_case "undefined fanin" `Quick
            test_create_undefined_fanin;
          Alcotest.test_case "bad arity" `Quick test_create_bad_arity;
          Alcotest.test_case "combinational cycle" `Quick
            test_create_combinational_cycle;
          Alcotest.test_case "registered feedback" `Quick
            test_registered_feedback_allowed;
          Alcotest.test_case "topo order" `Quick test_topo_order_respects_fanins;
          Alcotest.test_case "levels" `Quick test_levels_and_depth;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "combinational core" `Quick
            test_combinational_core;
          Alcotest.test_case "core idempotent" `Quick
            test_core_idempotent_on_combinational;
          Alcotest.test_case "eval" `Quick test_eval_tiny;
        ] );
      ( "patterns",
        [
          QCheck_alcotest.to_alcotest adder_property;
          QCheck_alcotest.to_alcotest parity_property;
          QCheck_alcotest.to_alcotest mux_property;
          QCheck_alcotest.to_alcotest decoder_property;
          QCheck_alcotest.to_alcotest multiplier_property;
          QCheck_alcotest.to_alcotest barrel_shifter_property;
          Alcotest.test_case "1-bit multiplier zero pad" `Quick
            test_multiplier_1bit_top_is_zero;
          Alcotest.test_case "inverter chain" `Quick test_inverter_chain;
          Alcotest.test_case "and-or ladder" `Quick test_and_or_ladder;
        ] );
      ( "bench format",
        [
          Alcotest.test_case "parse simple" `Quick test_parse_simple;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "crlf and case" `Quick test_parse_crlf_and_case;
          QCheck_alcotest.to_alcotest roundtrip_property;
        ] );
      ( "generator",
        [
          QCheck_alcotest.to_alcotest generator_profile_property;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "depth one" `Quick test_generator_depth_one;
          Alcotest.test_case "validate" `Quick test_generator_validate;
        ] );
      ( "stats", [ Alcotest.test_case "tiny" `Quick test_stats_tiny ] );
    ]
