(* Chaos matrix for the fault-injection layer: drive the real minpower
   binary through a set of deterministic fault plans — frame drops,
   corruption, truncation, worker exits and stalls, store ENOSPC/EIO,
   clock jumps — over unix and TCP fleets, cold and warm stores, 1 to 4
   workers. Under EVERY plan the batch must complete with JSONL rows
   byte-identical to the fault-free in-process run, and the recovery
   machinery (loss, requeue, quarantine, fallback) must be visible in
   the OpenMetrics exposition and the event log.

   argv.(1) is the minpower binary (the dune rule passes
   %{exe:../bin/minpower.exe}). *)

let minpower = Sys.argv.(1)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let jobs_path = "chaos_smoke_jobs.jsonl"

(* 24 distinct jobs: enough to keep a 4-worker fleet busy past several
   injected failures, all distinct so fallback/requeue counters have a
   predictable ceiling *)
let write_jobs () =
  let oc = open_out jobs_path in
  for i = 0 to 23 do
    Printf.fprintf oc
      "{\"id\":\"c%02d\",\"circuit\":\"s27\",\"optimizer\":\"%s\",\"config\":{\"clock_frequency\":%de6}}\n"
      i
      (if i mod 3 = 0 then "baseline" else "joint")
      (150 + i)
  done;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  close_in ic;
  lines

(* run `minpower batch` with extra args; returns (exit_code, JSONL rows) *)
let run_batch ?(env = []) ?(expect_exit = 0) ~tag extra =
  let out_path = Printf.sprintf "chaos_smoke_%s.out" tag in
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv = Array.of_list (minpower :: "batch" :: jobs_path :: extra) in
  let environment = Array.append (Unix.environment ()) (Array.of_list env) in
  let pid =
    Unix.create_process_env minpower argv environment Unix.stdin out_fd
      Unix.stderr
  in
  Unix.close out_fd;
  (match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n when n = expect_exit -> ()
  | Unix.WEXITED n -> fail "batch %s exited %d (want %d)" tag n expect_exit
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "batch %s got signal %d" tag n);
  List.filter
    (fun line -> String.length line > 0 && line.[0] = '{')
    (read_lines out_path)

let metric_value om_path name =
  let prefix = name ^ " " in
  match
    List.find_opt
      (fun line ->
        String.length line > String.length prefix
        && String.sub line 0 (String.length prefix) = prefix)
      (read_lines om_path)
  with
  | Some line ->
    float_of_string
      (String.sub line (String.length prefix)
         (String.length line - String.length prefix))
  | None -> fail "%s has no sample %s" om_path name

let check_identical ~tag a b =
  if List.length a <> List.length b then
    fail "%s: %d rows vs %d" tag (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      if x <> y then fail "%s: row %d differs:\n  %s\n  %s" tag i x y)
    (List.combine a b)

(* one chaos case: run under a plan, demand byte-identity with the
   baseline and check counter bounds on the coordinator's exposition *)
let case ~baseline ~tag ?(env = []) ?(extra = []) ~plan checks =
  let om = Printf.sprintf "chaos_smoke_%s.om" tag in
  let env = Printf.sprintf "DCOPT_FAULT_PLAN=%s" plan :: env in
  let rows = run_batch ~env ~tag (extra @ [ "--open-metrics"; om ]) in
  check_identical ~tag baseline rows;
  List.iter
    (fun (metric, check, what) ->
      let v = metric_value om metric in
      if not (check v) then fail "%s: %s %g %s" tag metric v what)
    checks;
  Printf.printf "  %-16s rows identical (%s)\n%!" tag plan

let () =
  ignore (Unix.alarm 300);
  write_jobs ();
  List.iter
    (fun d ->
      if Sys.file_exists d then begin
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
      end)
    [ "chaos_store_enospc"; "chaos_store_eio"; "chaos_store_fleet" ];

  let baseline = run_batch ~tag:"inproc" [] in
  if List.length baseline <> 24 then
    fail "expected 24 baseline rows, got %d" (List.length baseline);

  (* TCP fleet parity, no faults: --listen host:port with an ephemeral
     port, spawned workers dialing back over TCP *)
  let tcp =
    run_batch ~tag:"tcp_clean"
      [ "--workers"; "4"; "--listen"; "127.0.0.1:0" ]
  in
  check_identical ~tag:"tcp_clean" baseline tcp;
  Printf.printf "  %-16s rows identical (no faults, 4 workers)\n%!" "tcp_clean";

  let hb1 = [ "DCOPT_FLEET_HEARTBEAT_S=1" ] in
  let ge n = (fun v -> v >= float_of_int n) in
  let eq n = (fun v -> v = float_of_int n) in

  (* a silently dropped result: the worker looks alive until it goes
     idle, then its stuck in-flight job times out and is requeued *)
  case ~baseline ~tag:"drop" ~env:hb1 ~extra:[ "--workers"; "2" ]
    ~plan:"w0/wire.send.result@2:drop"
    [
      ("service_fleet_worker_lost_total", ge 1, "want >= 1");
      ("service_fleet_requeued_total", ge 1, "want >= 1");
    ];

  (* a bit flipped in transit over TCP: the checksum envelope turns it
     into a parse error, the sender is counted lost *)
  case ~baseline ~tag:"corrupt_tcp" ~env:hb1
    ~extra:[ "--workers"; "4"; "--listen"; "127.0.0.1:0" ]
    ~plan:"seed=11;w1/wire.send.result@1:corrupt"
    [
      ("service_fleet_worker_lost_total", ge 1, "want >= 1");
      ("service_fleet_requeued_total", ge 1, "want >= 1");
    ];

  (* a frame cut mid-line: reassembles with the next frame's bytes into
     a line that fails its checksum *)
  case ~baseline ~tag:"truncate" ~env:hb1 ~extra:[ "--workers"; "2" ]
    ~plan:"w0/wire.send.result@1:truncate=10"
    [ ("service_fleet_worker_lost_total", ge 1, "want >= 1") ];

  (* a crash-looping worker: the only worker exits on every job, is
     respawned once under the same id, exits again, and is quarantined;
     the coordinator then degrades to computing everything in-process *)
  case ~baseline ~tag:"exit_quarantine" ~extra:[ "--workers"; "1" ]
    ~plan:"w0/worker.job@*:exit"
    [
      ("service_fleet_worker_lost_total", eq 2, "want exactly 2");
      ("service_fleet_quarantined_total", eq 1, "want exactly 1");
      ("service_fleet_fallback_total", ge 20, "want >= 20");
    ];

  (* a wedged worker: stalls before computing (so it sends neither
     heartbeats nor results), trips the monotonic heartbeat deadline *)
  let events = "chaos_smoke_stall.events.jsonl" in
  case ~baseline ~tag:"stall" ~env:hb1
    ~extra:
      [
        "--workers"; "2"; "--events"; events; "--events-level"; "warn";
        "--run-id"; "chaos-stall";
      ]
    ~plan:"w0/worker.job@1:stall=5"
    [
      ("service_fleet_worker_lost_total", ge 1, "want >= 1");
      ("service_fleet_requeued_total", ge 1, "want >= 1");
    ];
  (* the cross-process correlation chain: the worker's fault.fired and
     the coordinator's loss/requeue events land in one log under one
     run id, carrying worker and job identities *)
  let ev = read_lines events in
  if ev = [] then fail "stall case wrote no events";
  List.iter
    (fun line ->
      if not (contains ~needle:"chaos-stall" line) then
        fail "event outside the run's correlation chain: %s" line)
    ev;
  let has needle what =
    if not (List.exists (contains ~needle) ev) then
      fail "event log is missing %s" what
  in
  has "fault.fired" "the worker-side fault.fired event";
  has "fleet.worker_lost" "the coordinator's fleet.worker_lost event";
  has "fleet.requeue" "the coordinator's fleet.requeue event";
  has "\"worker_id\"" "a worker_id field";
  has "\"job_id\"" "a job_id field";

  (* wall-clock jumps (NTP step, DST): scheduling runs on the monotonic
     clock, so a displaced wall clock must cause zero losses *)
  case ~baseline ~tag:"clock_jump" ~env:hb1 ~extra:[ "--workers"; "2" ]
    ~plan:"clock.tick@1:jump=3600;clock.tick@3:jump=-7200"
    [
      ("service_fleet_worker_lost_total", eq 0, "want exactly 0");
      ("service_fleet_fallback_total", eq 0, "want exactly 0");
      ("faults_clock_total", ge 2, "want >= 2");
    ];

  (* pure latency: delayed frames slow the batch but lose nothing *)
  case ~baseline ~tag:"delay" ~extra:[ "--workers"; "2" ]
    ~plan:"w0/wire.send.result@*:delay=0.05"
    [ ("service_fleet_worker_lost_total", eq 0, "want exactly 0") ];

  (* a full disk under an in-process batch: every put abandoned, batch
     completes, store left with no entries and no temp litter *)
  case ~baseline ~tag:"enospc" ~extra:[ "--store"; "chaos_store_enospc" ]
    ~plan:"store.put@*:enospc"
    [
      ("service_store_write_failed_total", ge 1, "want >= 1");
      ("faults_store_total", ge 1, "want >= 1");
    ];
  Array.iter
    (fun f -> fail "ENOSPC run left %s in the store" f)
    (Sys.readdir "chaos_store_enospc");

  (* a full disk under a fleet batch: coordinator and workers all fail
     their puts; rows still byte-identical *)
  case ~baseline ~tag:"enospc_fleet" ~env:hb1
    ~extra:[ "--workers"; "2"; "--store"; "chaos_store_fleet" ]
    ~plan:"store.put@*:enospc"
    [ ("service_fleet_worker_lost_total", eq 0, "want exactly 0") ];
  Array.iter
    (fun f -> fail "fleet ENOSPC run left %s in the store" f)
    (Sys.readdir "chaos_store_fleet");

  (* a rotting warm store: every read-back errors, so the whole batch
     recomputes — rows identical to the cold run, corruption counted *)
  let populate =
    run_batch ~tag:"eio_populate" [ "--store"; "chaos_store_eio" ]
  in
  check_identical ~tag:"eio_populate" baseline populate;
  case ~baseline ~tag:"eio_warm" ~extra:[ "--store"; "chaos_store_eio" ]
    ~plan:"store.find@*:eio"
    [ ("service_store_corrupt_total", ge 24, "want >= 24") ];

  (* front-door validation: a malformed plan and a malformed address are
     located config diagnostics, not crashes or silently-armed nothing *)
  ignore
    (run_batch ~tag:"bad_plan" ~expect_exit:2
       [ "--fault-plan"; "wire.send.bogus@1:drop" ]);
  ignore
    (run_batch ~tag:"bad_listen" ~expect_exit:2
       [ "--workers"; "2"; "--listen"; "nohost:notaport" ]);

  print_endline
    "chaos smoke: rows byte-identical to the fault-free run under drop, \
     corrupt, truncate, exit+quarantine, stall, clock-jump, delay, \
     ENOSPC (in-process and fleet) and EIO-warm plans, over unix and \
     TCP fleets; recovery counters and the event chain all verified"
