module Activity = Dcopt_activity.Activity
module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Patterns = Dcopt_netlist.Patterns

let specs_of c p d = Activity.uniform_inputs c ~probability:p ~density:d

(* ------------------------------------------------------------------ *)
(* Closed forms                                                        *)

let test_gate_probability_forms () =
  let check = Alcotest.(check (float 1e-12)) in
  check "and" 0.06 (Activity.gate_probability Gate.And [| 0.2; 0.3 |]);
  check "nand" 0.94 (Activity.gate_probability Gate.Nand [| 0.2; 0.3 |]);
  check "or" 0.44 (Activity.gate_probability Gate.Or [| 0.2; 0.3 |]);
  check "nor" 0.56 (Activity.gate_probability Gate.Nor [| 0.2; 0.3 |]);
  check "not" 0.8 (Activity.gate_probability Gate.Not [| 0.2 |]);
  check "buf" 0.2 (Activity.gate_probability Gate.Buf [| 0.2 |]);
  check "xor" 0.38 (Activity.gate_probability Gate.Xor [| 0.2; 0.3 |]);
  check "xnor" 0.62 (Activity.gate_probability Gate.Xnor [| 0.2; 0.3 |])

let test_sensitization_forms () =
  let check = Alcotest.(check (float 1e-12)) in
  check "and wrt x0" 0.3
    (Activity.gate_sensitization_probability Gate.And [| 0.2; 0.3 |] 0);
  check "or wrt x1" 0.8
    (Activity.gate_sensitization_probability Gate.Or [| 0.2; 0.3 |] 1);
  check "xor always" 1.0
    (Activity.gate_sensitization_probability Gate.Xor [| 0.2; 0.3 |] 0);
  check "not always" 1.0
    (Activity.gate_sensitization_probability Gate.Not [| 0.2 |] 0)

(* ------------------------------------------------------------------ *)
(* Local propagation on hand circuits                                  *)

let test_local_inverter () =
  let c = Patterns.inverter_chain ~stages:3 in
  let prof = Activity.local_profile c (specs_of c 0.3 0.2) in
  let id = Circuit.find c "inv3" in
  Alcotest.(check (float 1e-12)) "prob flips thrice" 0.7
    prof.Activity.probabilities.(id);
  Alcotest.(check (float 1e-12)) "density preserved" 0.2
    prof.Activity.densities.(id)

let test_local_and_gate () =
  let c =
    Circuit.create ~name:"and2"
      ~nodes:
        [ ("a", Gate.Input, []); ("b", Gate.Input, []);
          ("y", Gate.And, [ "a"; "b" ]) ]
      ~outputs:[ "y" ]
  in
  let prof = Activity.local_profile c (specs_of c 0.5 0.4) in
  let y = Circuit.find c "y" in
  Alcotest.(check (float 1e-12)) "p" 0.25 prof.Activity.probabilities.(y);
  (* D(y) = p_b D(a) + p_a D(b) = 0.5*0.4*2 *)
  Alcotest.(check (float 1e-12)) "density" 0.4 prof.Activity.densities.(y)

let test_local_xor_sums_densities () =
  let c = Patterns.parity_tree ~leaves:4 in
  let prof = Activity.local_profile c (specs_of c 0.5 0.1) in
  let out = (Circuit.outputs c).(0) in
  (* XOR tree passes every input transition through *)
  Alcotest.(check (float 1e-12)) "sum of input densities" 0.4
    prof.Activity.densities.(out)

let test_probabilities_bounded =
  QCheck.Test.make ~name:"probabilities within [0,1], densities >= 0"
    ~count:60
    QCheck.(pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    (fun (p, d) ->
      let c =
        Circuit.combinational_core
          (Dcopt_netlist.Generator.generate
             {
               Dcopt_netlist.Generator.profile_name = "act";
               primary_inputs = 5;
               primary_outputs = 3;
               flip_flops = 2;
               gates = 40;
               logic_depth = 5;
               seed = Some 99L;
             })
      in
      let prof = Activity.local_profile c (specs_of c p d) in
      Array.for_all (fun x -> x >= -1e-12 && x <= 1.0 +. 1e-12)
        prof.Activity.probabilities
      && Array.for_all (fun x -> x >= -1e-12) prof.Activity.densities)

let test_errors () =
  let seq =
    Circuit.create ~name:"seq"
      ~nodes:
        [ ("a", Gate.Input, []); ("ff", Gate.Dff, [ "a" ]) ]
      ~outputs:[ "ff" ]
  in
  (match Activity.local_profile seq [| { Activity.probability = 0.5; density = 0.1 } |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of sequential circuit");
  let c = Patterns.inverter_chain ~stages:1 in
  (match Activity.local_profile c [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch");
  match
    Activity.local_profile c [| { Activity.probability = 1.5; density = 0.1 } |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected probability range check"

(* ------------------------------------------------------------------ *)
(* Exact (BDD) engine                                                  *)

let test_exact_equals_local_on_tree () =
  (* trees have no reconvergent fanout, so the first-order method is exact *)
  let c = Patterns.parity_tree ~leaves:8 in
  let specs = specs_of c 0.4 0.3 in
  let local = Activity.local_profile c specs in
  match Activity.exact_profile c specs with
  | None -> Alcotest.fail "BDD should fit"
  | Some exact ->
    Array.iteri
      (fun id p ->
        Alcotest.(check (float 1e-9)) "probability" p
          local.Activity.probabilities.(id);
        Alcotest.(check (float 1e-9)) "density" exact.Activity.densities.(id)
          local.Activity.densities.(id))
      exact.Activity.probabilities

let test_exact_handles_reconvergence () =
  (* y = a AND (NOT a) is constant false: exact sees it, local does not *)
  let c =
    Circuit.create ~name:"reconv"
      ~nodes:
        [ ("a", Gate.Input, []); ("n", Gate.Not, [ "a" ]);
          ("y", Gate.And, [ "a"; "n" ]) ]
      ~outputs:[ "y" ]
  in
  let specs = specs_of c 0.5 0.2 in
  let local = Activity.local_profile c specs in
  match Activity.exact_profile c specs with
  | None -> Alcotest.fail "BDD should fit"
  | Some exact ->
    let y = Circuit.find c "y" in
    Alcotest.(check (float 1e-12)) "exact: constant false" 0.0
      exact.Activity.probabilities.(y);
    Alcotest.(check (float 1e-12)) "exact: never toggles" 0.0
      exact.Activity.densities.(y);
    Alcotest.(check bool) "local overestimates" true
      (local.Activity.probabilities.(y) > 0.0)

let test_exact_bails_on_limit () =
  let c = Patterns.parity_tree ~leaves:16 in
  let specs = specs_of c 0.5 0.1 in
  match Activity.exact_profile ~node_limit:3 c specs with
  | None -> ()
  | Some _ -> Alcotest.fail "expected node-limit bailout"

let test_exact_on_s27 () =
  let c = Circuit.combinational_core (Dcopt_suite.Suite.s27 ()) in
  let specs = specs_of c 0.5 0.2 in
  match Activity.exact_profile c specs with
  | None -> Alcotest.fail "s27 core easily fits"
  | Some exact ->
    let local = Activity.local_profile c specs in
    (* same ballpark; equality is not expected due to reconvergence *)
    Array.iter
      (fun id ->
        let e = exact.Activity.densities.(id)
        and l = local.Activity.densities.(id) in
        Alcotest.(check bool) "within 3x" true
          (e = 0.0 || l = 0.0 || (e /. l < 3.0 && l /. e < 3.0)))
      (Circuit.topo_order c)

let () =
  Alcotest.run "activity"
    [
      ( "closed forms",
        [
          Alcotest.test_case "gate probability" `Quick
            test_gate_probability_forms;
          Alcotest.test_case "sensitization" `Quick test_sensitization_forms;
        ] );
      ( "local",
        [
          Alcotest.test_case "inverter chain" `Quick test_local_inverter;
          Alcotest.test_case "and gate" `Quick test_local_and_gate;
          Alcotest.test_case "xor tree" `Quick test_local_xor_sums_densities;
          QCheck_alcotest.to_alcotest test_probabilities_bounded;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "exact",
        [
          Alcotest.test_case "tree agreement" `Quick
            test_exact_equals_local_on_tree;
          Alcotest.test_case "reconvergence" `Quick
            test_exact_handles_reconvergence;
          Alcotest.test_case "node limit" `Quick test_exact_bails_on_limit;
          Alcotest.test_case "s27" `Quick test_exact_on_s27;
        ] );
    ]
