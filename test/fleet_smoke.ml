(* End-to-end smoke for the multi-process fleet: the same 64-job batch
   through the in-process path, a 1-worker fleet, a 4-worker fleet, and
   a 3-worker fleet where one worker SIGKILLs itself mid-batch (the
   DCOPT_FLEET_CHAOS_KILL hook makes the crash deterministic: the job is
   fully computed, the result frame is never sent — the harshest loss
   the coordinator can take). Every run must produce byte-identical
   result rows, and the crash run must show the recovery machinery
   firing in its OpenMetrics exposition.

   argv.(1) is the minpower binary (the dune rule passes
   %{exe:../bin/minpower.exe}). *)

let minpower = Sys.argv.(1)

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let jobs_path = "fleet_smoke_jobs.jsonl"

(* 64 jobs: 56 distinct operating points plus 8 repeats, so the fleet
   path is exercised against within-batch dedup too (duplicates must
   read as cache hits whatever worker computed the first occurrence) *)
let write_jobs () =
  let oc = open_out jobs_path in
  for i = 0 to 63 do
    let fc = 150 + (i mod 56) in
    Printf.fprintf oc
      "{\"id\":\"j%02d\",\"circuit\":\"s27\",\"optimizer\":\"%s\",\"config\":{\"clock_frequency\":%de6}}\n"
      i
      (if i mod 3 = 0 then "baseline" else "joint")
      fc
  done;
  close_out oc

(* run `minpower batch` with extra args; return the JSONL rows (stdout
   lines that are JSON objects — Logs lines like the OpenMetrics notice
   are not rows) *)
let run_batch ?(env = []) ~tag extra =
  let out_path = Printf.sprintf "fleet_smoke_%s.out" tag in
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv = Array.of_list ((minpower :: "batch" :: jobs_path :: extra)) in
  let environment =
    Array.append (Unix.environment ()) (Array.of_list env)
  in
  let pid =
    Unix.create_process_env minpower argv environment Unix.stdin out_fd
      Unix.stderr
  in
  Unix.close out_fd;
  (match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "batch %s exited %d" tag n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "batch %s got signal %d" tag n);
  let ic = open_in out_path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.length line > 0 && line.[0] = '{' then line :: acc else acc)
    | exception End_of_file -> List.rev acc
  in
  let rows = go [] in
  close_in ic;
  rows

(* the value of a `name value` sample line *)
let metric_value om_path name =
  let ic = open_in om_path in
  let prefix = name ^ " " in
  let rec go =
    function
    | () -> (
      match input_line ic with
      | line when String.length line > String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix ->
        float_of_string
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      | _ -> go ()
      | exception End_of_file -> fail "%s has no sample %s" om_path name)
  in
  let v = go () in
  close_in ic;
  v

let check_identical ~tag a b =
  if List.length a <> List.length b then
    fail "%s: %d rows vs %d" tag (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      if x <> y then fail "%s: row %d differs:\n  %s\n  %s" tag i x y)
    (List.combine a b)

let () =
  ignore (Unix.alarm 300);
  write_jobs ();
  let baseline = run_batch ~tag:"inproc" [] in
  if List.length baseline <> 64 then
    fail "expected 64 rows, got %d" (List.length baseline);
  let w1 = run_batch ~tag:"w1" [ "--workers"; "1" ] in
  check_identical ~tag:"in-process vs 1 worker" baseline w1;
  let w4 = run_batch ~tag:"w4" [ "--workers"; "4" ] in
  check_identical ~tag:"in-process vs 4 workers" baseline w4;
  (* crash drill: worker w1 of 3 kills itself -9 in place of delivering
     its 2nd result; the coordinator must requeue its in-flight jobs
     onto the survivors and still produce the identical batch *)
  let om = "fleet_smoke_chaos.om" in
  let chaos =
    run_batch ~tag:"chaos"
      ~env:[ "DCOPT_FLEET_CHAOS_KILL=w1:2" ]
      [ "--workers"; "3"; "--open-metrics"; om ]
  in
  check_identical ~tag:"in-process vs crashed fleet" baseline chaos;
  (* w1 is respawned mid-batch under the same id and the chaos hook kills
     the replacement too (a fresh process, fresh result count), so the
     exact loss/spawn totals depend on scheduling: at least one loss, at
     least the initial 3 spawns, and never more deaths than the
     quarantine budget (2) allows for w1 *)
  let lost = metric_value om "service_fleet_worker_lost_total" in
  if lost < 1.0 || lost > 2.0 then
    fail "expected 1..2 worker losses, saw %g" lost;
  if metric_value om "service_fleet_spawned_total" < 3.0 then
    fail "expected at least 3 spawns";
  (* the un-delivered job was in flight when the worker died, so at
     least one requeue is guaranteed *)
  if metric_value om "service_fleet_requeued_total" < 1.0 then
    fail "worker loss did not requeue anything";
  print_endline
    "fleet smoke: 64-job rows byte-identical across in-process, 1-worker, \
     4-worker and SIGKILL-crashed 3-worker runs; loss and requeue \
     counters fired"
