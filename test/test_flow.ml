module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution
module Circuit = Dcopt_netlist.Circuit
module Sta = Dcopt_timing.Sta

let test_prepare_defaults () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s27") in
  Alcotest.(check bool) "core combinational" true
    (Circuit.is_combinational p.Flow.core);
  Alcotest.(check bool) "first-order engine" false p.Flow.used_exact_activity;
  Alcotest.(check int) "profile covers all nodes" (Circuit.size p.Flow.core)
    (Array.length p.Flow.profile.Dcopt_activity.Activity.densities)

let test_prepare_exact_engine () =
  let config =
    { Flow.default_config with Flow.engine = Flow.Exact_when_small }
  in
  let p = Flow.prepare ~config (Dcopt_suite.Suite.find_exn "s27") in
  Alcotest.(check bool) "exact used on s27" true p.Flow.used_exact_activity

let test_budgets_meet_cycle () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s298") in
  let sta = Sta.analyze p.Flow.core ~delays:(Flow.budgets p) in
  Alcotest.(check bool) "within skewed cycle" true
    (sta.Sta.critical_delay
    <= 0.95 /. Flow.default_config.Flow.clock_frequency *. (1.0 +. 1e-9))

let test_repaired_budgets_still_meet_cycle () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s344") in
  match Flow.repaired_budgets p ~vt:0.7 with
  | None -> Alcotest.fail "s344 repairable"
  | Some budgets ->
    let sta = Sta.analyze p.Flow.core ~delays:budgets in
    Alcotest.(check bool) "cycle preserved" true
      (sta.Sta.critical_delay
      <= 1.0 /. Flow.default_config.Flow.clock_frequency *. (1.0 +. 1e-6))

let test_end_to_end_s27 () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s27") in
  let baseline = (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) in
  let joint = (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) in
  match (baseline, joint) with
  | Some b, Some j ->
    Alcotest.(check bool) "joint cheaper" true
      (Solution.total_energy j < Solution.total_energy b);
    Alcotest.(check bool) "both feasible" true
      (Solution.feasible b && Solution.feasible j)
  | _ -> Alcotest.fail "s27 should be optimizable end to end"

let test_whole_suite_end_to_end () =
  (* the headline reproduction: every Table-1/2 circuit closes both ways *)
  List.iter
    (fun name ->
      let p = Flow.prepare (Dcopt_suite.Suite.find_exn name) in
      match ((Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p), (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared p)) with
      | Some b, Some j ->
        let savings = Solution.savings ~baseline:b j in
        Alcotest.(check bool)
          (Printf.sprintf "%s savings %.1fx > 5" name savings)
          true (savings > 5.0)
      | None, _ -> Alcotest.fail (name ^ ": baseline infeasible")
      | _, None -> Alcotest.fail (name ^ ": joint infeasible"))
    Dcopt_suite.Suite.table_circuits

let test_paper_binary_across_circuits () =
  (* the paper's own Procedure-2 binary search (not the grid reference)
     must close and deliver order-of-magnitude savings on its own *)
  List.iter
    (fun name ->
      let p = Flow.prepare (Dcopt_suite.Suite.find_exn name) in
      match ((Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p), (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p)) with
      | Some b, Some j ->
        let savings = Solution.savings ~baseline:b j in
        Alcotest.(check bool)
          (Printf.sprintf "%s binary savings %.1fx > 4" name savings)
          true (savings > 4.0)
      | None, _ -> Alcotest.fail (name ^ ": baseline infeasible")
      | _, None -> Alcotest.fail (name ^ ": binary heuristic infeasible"))
    [ "s298"; "s382"; "s444" ]

let test_report_contains_key_numbers () =
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s27") in
  match (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) with
  | None -> Alcotest.fail "expected solution"
  | Some sol ->
    let r = Flow.report p sol in
    let contains needle =
      let len_n = String.length needle and len_r = String.length r in
      let rec scan i =
        i + len_n <= len_r && (String.sub r i len_n = needle || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "mentions circuit" true (contains "s27");
    Alcotest.(check bool) "mentions Vdd" true (contains "Vdd");
    Alcotest.(check bool) "mentions feasible" true (contains "feasible")

let test_infeasible_frequency_returns_none () =
  let config = { Flow.default_config with Flow.clock_frequency = 30e9 } in
  let p = Flow.prepare ~config (Dcopt_suite.Suite.find_exn "s298") in
  Alcotest.(check bool) "no joint" true ((Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) = None);
  Alcotest.(check bool) "no baseline" true ((Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) = None)

let test_custom_frequency_feasible () =
  let config = { Flow.default_config with Flow.clock_frequency = 50e6 } in
  let p = Flow.prepare ~config (Dcopt_suite.Suite.find_exn "s298") in
  match (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared p) with
  | None -> Alcotest.fail "50 MHz should be easy"
  | Some slow ->
    let p300 = Flow.prepare (Dcopt_suite.Suite.find_exn "s298") in
    (match
       (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
         (Dcopt_core.Scenario.of_prepared p300)
     with
    | None -> Alcotest.fail "300 MHz feasible"
    | Some fast ->
      Alcotest.(check bool) "slower clock, lower energy" true
        (Solution.total_energy slow < Solution.total_energy fast);
      Alcotest.(check bool) "slower clock, lower vdd" true
        (Solution.vdd slow <= Solution.vdd fast))

let () =
  Alcotest.run "flow"
    [
      ( "prepare",
        [
          Alcotest.test_case "defaults" `Quick test_prepare_defaults;
          Alcotest.test_case "exact engine" `Quick test_prepare_exact_engine;
          Alcotest.test_case "budgets meet cycle" `Quick test_budgets_meet_cycle;
          Alcotest.test_case "repaired budgets" `Quick
            test_repaired_budgets_still_meet_cycle;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "s27" `Quick test_end_to_end_s27;
          Alcotest.test_case "whole suite" `Slow test_whole_suite_end_to_end;
          Alcotest.test_case "paper binary strategy" `Slow
            test_paper_binary_across_circuits;
          Alcotest.test_case "report" `Quick test_report_contains_key_numbers;
          Alcotest.test_case "infeasible frequency" `Quick
            test_infeasible_frequency_returns_none;
          Alcotest.test_case "frequency scaling" `Quick
            test_custom_frequency_feasible;
        ] );
    ]
