(* The domain pool and the determinism guarantee of its call sites:
   --jobs 4 must be bit-identical to --jobs 1, including telemetry
   streams, because every parallel site computes pure results in index
   order and emits/folds sequentially. *)

module Par = Dcopt_par.Par
module Circuit = Dcopt_netlist.Circuit
module Tech = Dcopt_device.Tech
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Power_model = Dcopt_opt.Power_model
module Budget_repair = Dcopt_opt.Budget_repair
module Heuristic = Dcopt_opt.Heuristic
module Annealing = Dcopt_opt.Annealing
module Yield = Dcopt_opt.Yield
module Solution = Dcopt_opt.Solution
module Telemetry = Dcopt_obs.Telemetry

let tech = Tech.default
let fc = 300e6

let setup ?(name = "s27") () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.find_exn name) in
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc core profile in
  let raw =
    (Delay_assign.assign core ~cycle_time:(1.0 /. fc)).Delay_assign.t_max
  in
  let budgets =
    match
      Budget_repair.repair env ~budgets:raw ~vdd:tech.Tech.vdd_max
        ~vt:tech.Tech.vt_min
    with
    | Budget_repair.Repaired { budgets; _ } -> budgets
    | Budget_repair.Infeasible _ -> raw
  in
  (env, budgets)

let with_jobs n fn =
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) fn

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)

let test_map_order () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 7) input in
  let got = Par.map ~jobs:4 (fun i -> (i * i) + 7) input in
  Alcotest.(check (array int)) "index-ordered results" expected got

let test_map_list_order () =
  let input = List.init 23 (fun i -> i) in
  let expected = List.map string_of_int input in
  let got = Par.map_list ~jobs:4 string_of_int input in
  Alcotest.(check (list string)) "list order preserved" expected got

let test_parallel_for_covers_all () =
  let n = 64 in
  let hits = Array.make n 0 in
  Par.parallel_for ~jobs:4 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 h)
    hits

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      Par.parallel_for ~jobs:4 ~n:32 (fun i -> if i = 17 then raise (Boom i));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "task exception reaches caller" (Some 17)
    raised;
  (* the pool must stay usable after a failed batch *)
  let got = Par.map ~jobs:4 (fun i -> i + 1) (Array.init 8 (fun i -> i)) in
  Alcotest.(check (array int)) "pool reusable after exception"
    (Array.init 8 (fun i -> i + 1))
    got

let test_nested_map_degenerates () =
  (* inner calls from inside a running task must complete sequentially
     instead of deadlocking on the one global pool *)
  let got =
    Par.map ~jobs:4
      (fun i ->
        Array.fold_left ( + ) 0
          (Par.map ~jobs:4 (fun j -> (10 * i) + j) (Array.init 5 Fun.id)))
      (Array.init 12 Fun.id)
  in
  let expected =
    Array.init 12 (fun i ->
        Array.fold_left ( + ) 0 (Array.init 5 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested map correct" expected got

let test_set_jobs_validates () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Par.set_jobs: jobs < 1") (fun () -> Par.set_jobs 0)

(* ------------------------------------------------------------------ *)
(* Call-site determinism: jobs=4 bit-identical to jobs=1               *)

let check_same_solution what a b =
  match (a, b) with
  | None, None -> ()
  | Some a, Some b ->
    Alcotest.(check bool) (what ^ ": vdd identical") true
      (Solution.vdd a = Solution.vdd b);
    Alcotest.(check bool) (what ^ ": vt identical") true
      (a.Solution.design.Power_model.vt = b.Solution.design.Power_model.vt);
    Alcotest.(check bool) (what ^ ": widths identical") true
      (a.Solution.design.Power_model.widths
      = b.Solution.design.Power_model.widths);
    Alcotest.(check bool) (what ^ ": energy identical") true
      (Solution.total_energy a = Solution.total_energy b)
  | _ -> Alcotest.fail (what ^ ": one run solved, the other did not")

let check_same_telemetry what a b =
  Alcotest.(check int)
    (what ^ ": trial count identical")
    (Telemetry.count a) (Telemetry.count b);
  Alcotest.(check bool)
    (what ^ ": iteration stream identical")
    true
    (Telemetry.iterations a = Telemetry.iterations b)

let test_grid_determinism () =
  let env, budgets = setup () in
  let options =
    { Heuristic.default_options with strategy = Heuristic.Grid_refine;
      m_steps = 8 }
  in
  let run jobs =
    with_jobs jobs (fun () ->
        let rec_ = Telemetry.recorder () in
        let sol =
          Heuristic.optimize ~observer:(Telemetry.record rec_) ~options env
            ~budgets
        in
        (sol, rec_))
  in
  let sol1, rec1 = run 1 in
  let sol4, rec4 = run 4 in
  check_same_solution "grid_refine" sol1 sol4;
  check_same_telemetry "grid_refine" rec1 rec4

let test_yield_determinism () =
  let env, budgets = setup () in
  let design =
    match
      Heuristic.optimize
        ~options:{ Heuristic.default_options with m_steps = 6 }
        env ~budgets
    with
    | Some s -> s.Solution.design
    | None -> Power_model.uniform_design env ~vdd:1.0 ~vt:0.2 ~w:6.0
  in
  let run jobs =
    with_jobs jobs (fun () ->
        Yield.monte_carlo env design ~sigma_fraction:0.08 ~samples:64)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "yield report identical" true (r1 = r4)

let test_annealing_determinism () =
  let env, budgets = setup () in
  let options =
    { Annealing.default_options with passes = 3; moves_per_pass = 150 }
  in
  let run jobs =
    with_jobs jobs (fun () ->
        let rec_ = Telemetry.recorder () in
        let sol =
          Annealing.optimize ~observer:(Telemetry.record rec_) ~options env
            ~budgets
        in
        (sol, rec_))
  in
  let sol1, rec1 = run 1 in
  let sol4, rec4 = run 4 in
  check_same_solution "annealing" sol1 sol4;
  check_same_telemetry "annealing" rec1 rec4

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves index order" `Quick test_map_order;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_order;
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_parallel_for_covers_all;
          Alcotest.test_case "task exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested map degenerates" `Quick
            test_nested_map_degenerates;
          Alcotest.test_case "set_jobs validates" `Quick test_set_jobs_validates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "grid_refine jobs 4 = jobs 1" `Quick
            test_grid_determinism;
          Alcotest.test_case "yield jobs 4 = jobs 1" `Quick
            test_yield_determinism;
          Alcotest.test_case "annealing jobs 4 = jobs 1" `Quick
            test_annealing_determinism;
        ] );
    ]
